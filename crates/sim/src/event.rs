//! Deterministic discrete-event queue.

use crate::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A min-heap of timestamped events with FIFO tie-breaking: events pushed
/// earlier pop first among equal timestamps, making simulations fully
/// deterministic regardless of payload type.
///
/// ```
/// use versa_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime(20), "late");
/// q.push(SimTime(10), "early");
/// q.push(SimTime(10), "early-but-second");
/// assert_eq!(q.pop(), Some((SimTime(10), "early")));
/// assert_eq!(q.pop(), Some((SimTime(10), "early-but-second")));
/// assert_eq!(q.pop(), Some((SimTime(20), "late")));
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
}

struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue { heap: BinaryHeap::new(), seq: 0 }
    }
}

impl<E> EventQueue<E> {
    /// Empty queue.
    pub fn new() -> EventQueue<E> {
        EventQueue::default()
    }

    /// Schedule `payload` at `time`.
    pub fn push(&mut self, time: SimTime, payload: E) {
        self.heap.push(Reverse(Entry { time, seq: self.seq, payload }));
        self.seq += 1;
    }

    /// Pop the earliest event (FIFO among ties).
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|Reverse(e)| (e.time, e.payload))
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(30), "c");
        q.push(SimTime(10), "a");
        q.push(SimTime(20), "b");
        assert_eq!(q.pop(), Some((SimTime(10), "a")));
        assert_eq!(q.pop(), Some((SimTime(20), "b")));
        assert_eq!(q.pop(), Some((SimTime(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((SimTime(5), i)));
        }
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.push(SimTime(7), ());
        assert_eq!(q.peek_time(), Some(SimTime(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime(10), 1);
        q.push(SimTime(5), 0);
        assert_eq!(q.pop(), Some((SimTime(5), 0)));
        q.push(SimTime(7), 2);
        q.push(SimTime(7), 3);
        assert_eq!(q.pop(), Some((SimTime(7), 2)));
        assert_eq!(q.pop(), Some((SimTime(7), 3)));
        assert_eq!(q.pop(), Some((SimTime(10), 1)));
    }
}
