//! Virtual time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// A point in virtual time, in nanoseconds since simulation start.
///
/// `SimTime` is totally ordered and saturating-free: simulations that
/// overflow 2^64 ns (~585 years) are a bug, so arithmetic panics in debug
/// builds like ordinary integer arithmetic.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);

    /// Interpret a [`Duration`] as a time offset from simulation start.
    #[inline]
    pub fn from_duration(d: Duration) -> SimTime {
        SimTime(d.as_nanos() as u64)
    }

    /// This instant as an offset from simulation start.
    #[inline]
    pub fn as_duration(self) -> Duration {
        Duration::from_nanos(self.0)
    }

    /// Elapsed virtual time since `earlier`.
    ///
    /// # Panics
    /// Panics if `earlier` is later than `self`.
    #[inline]
    pub fn since(self, earlier: SimTime) -> Duration {
        assert!(earlier <= self, "time went backwards: {earlier:?} > {self:?}");
        Duration::from_nanos(self.0 - earlier.0)
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;

    #[inline]
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0 + rhs.as_nanos() as u64)
    }
}

impl AddAssign<Duration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.as_nanos() as u64;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;

    #[inline]
    fn sub(self, rhs: SimTime) -> Duration {
        self.since(rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.0 as f64 / 1e9)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_duration_advances() {
        let t = SimTime::ZERO + Duration::from_millis(5);
        assert_eq!(t, SimTime(5_000_000));
        assert_eq!(t.as_duration(), Duration::from_millis(5));
    }

    #[test]
    fn since_measures_elapsed() {
        let a = SimTime(100);
        let b = SimTime(350);
        assert_eq!(b.since(a), Duration::from_nanos(250));
        assert_eq!(b - a, Duration::from_nanos(250));
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn since_panics_on_reversal() {
        let _ = SimTime(1).since(SimTime(2));
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(SimTime(1) < SimTime(2));
        assert_eq!(SimTime::ZERO.max(SimTime(7)), SimTime(7));
    }

    #[test]
    fn debug_renders_seconds() {
        assert_eq!(format!("{:?}", SimTime(1_500_000_000)), "1.500000s");
    }
}
