//! Trace analysis: utilization, link occupancy, and timeline export.
//!
//! Turns a recorded [`Trace`] into the aggregate views a performance
//! engineer would pull from Paraver on the real Nanos++ runtime:
//! per-worker busy time / utilization, per-category transfer occupancy,
//! and a CSV timeline for external plotting.

use crate::{SimTime, Trace, TraceEvent};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::time::Duration;
use versa_core::WorkerId;
use versa_mem::TransferKind;

/// One executed interval on a worker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TaskInterval {
    /// The worker that executed.
    pub worker: WorkerId,
    /// Task start.
    pub start: SimTime,
    /// Task end.
    pub end: SimTime,
}

/// Aggregated view of one trace.
#[derive(Clone, Debug)]
pub struct TraceAnalysis {
    /// End of the last event in the trace.
    pub span: SimTime,
    /// Busy (compute) time per worker id.
    pub busy: HashMap<WorkerId, Duration>,
    /// Executed intervals per worker, in start order.
    pub intervals: Vec<TaskInterval>,
    /// Total link-busy time per transfer category.
    pub transfer_time: HashMap<TransferKind, Duration>,
    /// Number of tasks that executed.
    pub task_count: usize,
    /// Number of transfers that occurred.
    pub transfer_count: usize,
    /// Number of failed execution attempts (injected faults).
    pub failed_count: usize,
}

impl TraceAnalysis {
    /// Analyze a trace. Start/end events are matched per task; a
    /// `TaskStart` without its `TaskEnd` (truncated trace) is ignored.
    pub fn new(trace: &Trace) -> TraceAnalysis {
        let mut starts: HashMap<u64, (WorkerId, SimTime)> = HashMap::new();
        let mut busy: HashMap<WorkerId, Duration> = HashMap::new();
        let mut intervals = Vec::new();
        let mut transfer_time: HashMap<TransferKind, Duration> = HashMap::new();
        let mut span = SimTime::ZERO;
        let mut transfer_count = 0;
        let mut failed_count = 0;
        for ev in trace.events() {
            match *ev {
                TraceEvent::TaskStart { time, task, worker, .. } => {
                    starts.insert(task.0, (worker, time));
                }
                TraceEvent::TaskEnd { time, task, worker } => {
                    span = span.max(time);
                    if let Some((w, start)) = starts.remove(&task.0) {
                        debug_assert_eq!(w, worker, "task moved workers mid-flight");
                        *busy.entry(worker).or_default() += time - start;
                        intervals.push(TaskInterval { worker, start, end: time });
                    }
                }
                TraceEvent::TaskFailed { time, task, worker, .. } => {
                    // The failed attempt still occupied the worker; it
                    // just produces no completed task.
                    span = span.max(time);
                    failed_count += 1;
                    if let Some((w, start)) = starts.remove(&task.0) {
                        debug_assert_eq!(w, worker, "task moved workers mid-flight");
                        *busy.entry(worker).or_default() += time - start;
                        intervals.push(TaskInterval { worker, start, end: time });
                    }
                }
                TraceEvent::Transfer { start, end, from, to, .. } => {
                    span = span.max(end);
                    let kind = TransferKind::classify(from, to);
                    *transfer_time.entry(kind).or_default() += end - start;
                    transfer_count += 1;
                }
            }
        }
        intervals.sort_by_key(|i| (i.start, i.worker));
        let task_count = intervals.len() - failed_count;
        TraceAnalysis {
            span,
            busy,
            intervals,
            transfer_time,
            task_count,
            transfer_count,
            failed_count,
        }
    }

    /// Fraction of the trace span a worker spent computing (0..=1).
    pub fn utilization(&self, worker: WorkerId) -> f64 {
        if self.span == SimTime::ZERO {
            return 0.0;
        }
        self.busy.get(&worker).copied().unwrap_or(Duration::ZERO).as_secs_f64()
            / self.span.as_duration().as_secs_f64()
    }

    /// Check that no worker ever ran two tasks at once; returns the
    /// first violating pair if any (a simulator-correctness invariant
    /// used by the test suite).
    pub fn find_overlap(&self) -> Option<(TaskInterval, TaskInterval)> {
        let mut last_end: HashMap<WorkerId, TaskInterval> = HashMap::new();
        for &iv in &self.intervals {
            if let Some(&prev) = last_end.get(&iv.worker) {
                if iv.start < prev.end {
                    return Some((prev, iv));
                }
            }
            let slot = last_end.entry(iv.worker).or_insert(iv);
            if iv.end > slot.end {
                *slot = iv;
            }
        }
        None
    }

    /// Render a per-worker utilization summary.
    pub fn utilization_table(&self) -> String {
        let mut workers: Vec<WorkerId> = self.busy.keys().copied().collect();
        workers.sort_unstable();
        let mut out = String::new();
        let _ = writeln!(out, "{:<8} {:>10} {:>8}", "worker", "busy (ms)", "util %");
        for w in workers {
            let busy = self.busy[&w];
            let _ = writeln!(
                out,
                "{:<8} {:>10.1} {:>8.1}",
                w.to_string(),
                busy.as_secs_f64() * 1e3,
                100.0 * self.utilization(w)
            );
        }
        out
    }
}

/// Export a trace as CSV (`kind,start_ns,end_ns,who,what`) for external
/// timeline tools.
pub fn to_csv(trace: &Trace) -> String {
    let mut out = String::from("kind,start_ns,end_ns,who,what\n");
    let mut open: HashMap<u64, (WorkerId, SimTime, u16)> = HashMap::new();
    for ev in trace.events() {
        match *ev {
            TraceEvent::TaskStart { time, task, worker, version } => {
                open.insert(task.0, (worker, time, version.0));
            }
            TraceEvent::TaskEnd { time, task, .. } => {
                if let Some((worker, start, version)) = open.remove(&task.0) {
                    let _ = writeln!(
                        out,
                        "task,{},{},w{},t{}v{version}",
                        start.0, time.0, worker.0, task.0
                    );
                }
            }
            TraceEvent::TaskFailed { time, task, worker, version, attempt } => {
                if let Some((w, start, v)) = open.remove(&task.0) {
                    debug_assert_eq!((w, v), (worker, version.0));
                    let _ = writeln!(
                        out,
                        "failed,{},{},w{},t{}v{}a{attempt}",
                        start.0, time.0, worker.0, task.0, version.0
                    );
                }
            }
            TraceEvent::Transfer { start, end, data, from, to, bytes } => {
                let _ = writeln!(
                    out,
                    "transfer,{},{},{from}->{to},{data:?}:{bytes}B",
                    start.0, end.0
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use versa_core::{TaskId, VersionId};
    use versa_mem::{DataId, MemSpace};

    fn sample_trace() -> Trace {
        let mut t = Trace::new();
        t.enable();
        let start = |time, task, worker| TraceEvent::TaskStart {
            time: SimTime(time),
            task: TaskId(task),
            worker: WorkerId(worker),
            version: VersionId(0),
        };
        let end = |time, task, worker| TraceEvent::TaskEnd {
            time: SimTime(time),
            task: TaskId(task),
            worker: WorkerId(worker),
        };
        t.record(start(0, 1, 0));
        t.record(end(100, 1, 0));
        t.record(start(100, 2, 0));
        t.record(end(250, 2, 0));
        t.record(start(50, 3, 1));
        t.record(end(150, 3, 1));
        t.record(TraceEvent::Transfer {
            start: SimTime(0),
            end: SimTime(40),
            data: DataId(0),
            from: MemSpace::HOST,
            to: MemSpace::device(0),
            bytes: 64,
        });
        t
    }

    #[test]
    fn busy_time_sums_intervals() {
        let a = TraceAnalysis::new(&sample_trace());
        assert_eq!(a.busy[&WorkerId(0)], Duration::from_nanos(250));
        assert_eq!(a.busy[&WorkerId(1)], Duration::from_nanos(100));
        assert_eq!(a.task_count, 3);
        assert_eq!(a.transfer_count, 1);
        assert_eq!(a.span, SimTime(250));
    }

    #[test]
    fn utilization_is_busy_over_span() {
        let a = TraceAnalysis::new(&sample_trace());
        assert!((a.utilization(WorkerId(0)) - 1.0).abs() < 1e-12);
        assert!((a.utilization(WorkerId(1)) - 0.4).abs() < 1e-12);
        assert_eq!(a.utilization(WorkerId(9)), 0.0);
    }

    #[test]
    fn transfer_occupancy_by_category() {
        let a = TraceAnalysis::new(&sample_trace());
        assert_eq!(a.transfer_time[&TransferKind::Input], Duration::from_nanos(40));
        assert!(!a.transfer_time.contains_key(&TransferKind::Device));
    }

    #[test]
    fn no_overlap_in_well_formed_trace() {
        let a = TraceAnalysis::new(&sample_trace());
        assert_eq!(a.find_overlap(), None);
    }

    #[test]
    fn overlap_is_detected() {
        let mut t = sample_trace();
        t.record(TraceEvent::TaskStart {
            time: SimTime(200),
            task: TaskId(9),
            worker: WorkerId(0),
            version: VersionId(0),
        });
        t.record(TraceEvent::TaskEnd {
            time: SimTime(300),
            task: TaskId(9),
            worker: WorkerId(0),
        });
        // Task 9 on w0 starts at 200, but task 2 runs until 250.
        let a = TraceAnalysis::new(&t);
        assert!(a.find_overlap().is_some());
    }

    #[test]
    fn csv_lists_tasks_and_transfers() {
        let csv = to_csv(&sample_trace());
        assert!(csv.starts_with("kind,start_ns,end_ns"));
        assert!(csv.contains("task,0,100,w0,t1v0"));
        assert!(csv.contains("transfer,0,40,host->dev0,d0:64B"));
        assert_eq!(csv.lines().count(), 1 + 3 + 1);
    }

    #[test]
    fn utilization_table_renders() {
        let a = TraceAnalysis::new(&sample_trace());
        let table = a.utilization_table();
        assert!(table.contains("w0"));
        assert!(table.contains("100.0"));
        assert!(table.contains("40.0"));
    }
}
