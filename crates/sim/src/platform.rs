//! Simulated platform description.

use crate::FaultPlan;
use std::time::Duration;

/// One host↔device interconnect link (PCIe-class).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkConfig {
    /// Sustained bandwidth in bytes per second.
    pub bandwidth: f64,
    /// Per-transfer fixed latency (setup + driver overhead).
    pub latency: Duration,
    /// Whether the device has independent upload/download DMA engines
    /// (full duplex): host→device and device→host transfers then overlap
    /// instead of serializing on one engine. The M2090 has dual copy
    /// engines, so this defaults to `true`.
    pub duplex: bool,
}

impl LinkConfig {
    /// Time for one transfer of `bytes` bytes over this link.
    pub fn transfer_time(&self, bytes: u64) -> Duration {
        self.latency + Duration::from_secs_f64(bytes as f64 / self.bandwidth)
    }
}

impl Default for LinkConfig {
    fn default() -> Self {
        // PCIe 2.0 x16 as on MinoTauro: ~6 GB/s sustained, ~15 µs setup,
        // dual copy engines.
        LinkConfig { bandwidth: 6.0e9, latency: Duration::from_micros(15), duplex: true }
    }
}

/// One simulated *remote node* in a multi-node cluster topology: a
/// bundle of SMP workers reached over a NIC link (versa-net's
/// coordinator/worker clusters, in virtual time).
///
/// Remote node `j` (0-based) occupies memory space
/// `MemSpace::device(gpus + j)` — its *mirror space* — and its NIC is
/// modelled exactly like a PCIe link: finite bandwidth, per-transfer
/// latency, optional duplex DMA. The scheduler prices it with the same
/// learned-bandwidth bids it uses for GPU links.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimNode {
    /// SMP workers the node contributes.
    pub smp_workers: usize,
    /// The host↔node network link.
    pub nic: LinkConfig,
}

impl SimNode {
    /// A node with `smp_workers` workers behind a default NIC
    /// (10 GbE-class: 1.25 GB/s, 50 µs setup, full duplex).
    pub fn new(smp_workers: usize) -> SimNode {
        SimNode {
            smp_workers,
            nic: LinkConfig {
                bandwidth: 1.25e9,
                latency: Duration::from_micros(50),
                duplex: true,
            },
        }
    }
}

/// Description of the simulated heterogeneous node.
///
/// The defaults model the paper's evaluation platform (§V-A1): a
/// MinoTauro node with two Xeon E5649 6-core sockets and two NVIDIA
/// M2090 GPUs. Peak numbers are used only for GFLOP/s normalization in
/// reports ("one SMP core represents less than 1% of the machine's peak
/// performance and one GPU represents around 45%", §V-B1).
#[derive(Clone, Debug, PartialEq)]
pub struct PlatformConfig {
    /// Number of SMP worker threads (the paper sweeps 1–8; the node has
    /// 12 cores).
    pub smp_workers: usize,
    /// Number of GPU devices, each driven by one worker (the paper uses
    /// 1 or 2).
    pub gpus: usize,
    /// Host↔GPU link, one per GPU.
    pub link: LinkConfig,
    /// Whether GPUs can copy directly to each other. When `false`,
    /// device-to-device traffic is staged through the host (two hops on
    /// the links) but still accounted once as *Device Tx*, mirroring the
    /// paper's accounting.
    pub gpu_p2p: bool,
    /// Device memory per GPU in bytes, or `None` for an unbounded
    /// device memory (the default: the paper's working sets fit the
    /// M2090's 6 GB). When set, the runtime manages each GPU memory as
    /// an LRU cache: filling it evicts the least-recently-used tiles,
    /// writing back sole copies first.
    pub gpu_mem_capacity: Option<u64>,
    /// Double-precision peak of one GPU in GFLOP/s (M2090: 665).
    pub gpu_peak_gflops: f64,
    /// Double-precision peak of one SMP core in GFLOP/s (E5649: ~10).
    pub smp_core_peak_gflops: f64,
    /// RNG seed for execution-time noise; same seed ⇒ identical run.
    pub seed: u64,
    /// Per-GPU speed multipliers on kernel durations (1.0 = nominal;
    /// 2.0 = that GPU is twice as slow). Empty means all GPUs nominal.
    /// Lets experiments model mixed-generation nodes — and expose that
    /// the paper's per-*version* profiles cannot distinguish two
    /// different-speed devices of the same kind.
    pub gpu_speed_factors: Vec<f64>,
    /// Fault-injection plan: which simulated executions fail and with
    /// what probability. Empty by default (no faults); decisions are
    /// drawn from a dedicated RNG stream seeded from `seed`, so the
    /// same seed and plan reproduce the identical failure pattern.
    pub faults: FaultPlan,
    /// Remote nodes in a simulated cluster (empty by default: a classic
    /// single-node platform). Node `j` contributes `smp_workers` workers
    /// behind its own NIC link and occupies `MemSpace::device(gpus + j)`.
    pub nodes: Vec<SimNode>,
}

impl PlatformConfig {
    /// The paper's MinoTauro node with a chosen worker mix.
    pub fn minotauro(smp_workers: usize, gpus: usize) -> PlatformConfig {
        PlatformConfig { smp_workers, gpus, ..PlatformConfig::default() }
    }

    /// MinoTauro with the M2090's real 6 GB device memories enforced
    /// (LRU-managed).
    pub fn minotauro_finite(smp_workers: usize, gpus: usize) -> PlatformConfig {
        PlatformConfig {
            gpu_mem_capacity: Some(6 * 1024 * 1024 * 1024),
            ..PlatformConfig::minotauro(smp_workers, gpus)
        }
    }

    /// Total worker count (SMP + one per GPU + remote-node workers).
    pub fn worker_count(&self) -> usize {
        self.smp_workers + self.gpus + self.remote_worker_count()
    }

    /// Workers contributed by remote nodes only.
    pub fn remote_worker_count(&self) -> usize {
        self.nodes.iter().map(|n| n.smp_workers).sum()
    }

    /// Aggregate peak in GFLOP/s for the configured worker mix
    /// (remote-node cores count like local SMP cores).
    pub fn peak_gflops(&self) -> f64 {
        self.gpus as f64 * self.gpu_peak_gflops
            + (self.smp_workers + self.remote_worker_count()) as f64
                * self.smp_core_peak_gflops
    }

    /// Speed multiplier of the `i`-th GPU (1.0 when not configured).
    pub fn gpu_speed_factor(&self, gpu: usize) -> f64 {
        self.gpu_speed_factors.get(gpu).copied().unwrap_or(1.0)
    }

    /// Validate internal consistency (at least one worker, sane rates).
    pub fn validate(&self) -> Result<(), String> {
        if self.worker_count() == 0 {
            return Err("platform has no workers".into());
        }
        if self.link.bandwidth <= 0.0 {
            return Err("link bandwidth must be positive".into());
        }
        if self.gpu_peak_gflops <= 0.0 || self.smp_core_peak_gflops <= 0.0 {
            return Err("peak rates must be positive".into());
        }
        if self.gpu_speed_factors.iter().any(|&f| f <= 0.0) {
            return Err("GPU speed factors must be positive".into());
        }
        for (j, node) in self.nodes.iter().enumerate() {
            if node.smp_workers == 0 {
                return Err(format!("remote node {j} has no workers"));
            }
            if node.nic.bandwidth <= 0.0 {
                return Err(format!("remote node {j} NIC bandwidth must be positive"));
            }
        }
        self.faults.validate(self.nodes.len())?;
        Ok(())
    }
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig {
            smp_workers: 8,
            gpus: 2,
            link: LinkConfig::default(),
            gpu_p2p: false,
            gpu_mem_capacity: None,
            gpu_peak_gflops: 665.0,
            smp_core_peak_gflops: 10.1,
            seed: 0x5eed_c0de,
            gpu_speed_factors: Vec::new(),
            faults: FaultPlan::default(),
            nodes: Vec::new(),
        }
    }
}

#[cfg(test)]
#[allow(clippy::assertions_on_constants)] // pins the calibrated platform ratios
mod tests {
    use super::*;

    #[test]
    fn default_models_minotauro() {
        let p = PlatformConfig::default();
        assert_eq!(p.gpus, 2);
        assert!(p.validate().is_ok());
        // Paper §V-B1: one SMP core < 1% of peak, one GPU ≈ 45%.
        let peak = p.peak_gflops();
        assert!(p.smp_core_peak_gflops / peak < 0.01);
        let gpu_share = p.gpu_peak_gflops / peak;
        assert!(gpu_share > 0.40 && gpu_share < 0.50, "gpu share {gpu_share}");
    }

    #[test]
    fn minotauro_preset_sets_worker_mix() {
        let p = PlatformConfig::minotauro(4, 1);
        assert_eq!(p.smp_workers, 4);
        assert_eq!(p.gpus, 1);
        assert_eq!(p.worker_count(), 5);
    }

    #[test]
    fn transfer_time_scales_with_bytes() {
        let link =
            LinkConfig { bandwidth: 1e9, latency: Duration::from_micros(10), duplex: true };
        let t1 = link.transfer_time(1_000_000); // 1 ms + 10 µs
        assert_eq!(t1, Duration::from_micros(1010));
        let t0 = link.transfer_time(0);
        assert_eq!(t0, Duration::from_micros(10), "latency-only for empty transfer");
    }

    #[test]
    fn finite_preset_sets_m2090_capacity() {
        let p = PlatformConfig::minotauro_finite(4, 2);
        assert_eq!(p.gpu_mem_capacity, Some(6 * 1024 * 1024 * 1024));
        assert_eq!(PlatformConfig::minotauro(4, 2).gpu_mem_capacity, None);
    }

    #[test]
    fn validation_catches_bad_configs() {
        let p = PlatformConfig { smp_workers: 0, gpus: 0, ..Default::default() };
        assert!(p.validate().is_err());
        let mut p = PlatformConfig::default();
        p.link.bandwidth = 0.0;
        assert!(p.validate().is_err());
        let p = PlatformConfig { gpu_peak_gflops: -1.0, ..Default::default() };
        assert!(p.validate().is_err());
        let p = PlatformConfig { gpu_speed_factors: vec![1.0, 0.0], ..Default::default() };
        assert!(p.validate().is_err());
        assert_eq!(PlatformConfig::default().gpu_speed_factor(7), 1.0);
    }
}
