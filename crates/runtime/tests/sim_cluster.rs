//! Multi-node simulation: remote-node workers behind NIC links, and
//! node-level fault injection (satellite of the versa-net subsystem).
//! Proves the virtual-time cluster honours the same failure contract as
//! the TCP one: a lost node's tasks are requeued, the node is never
//! rescheduled, no version is quarantined for a node's death, and the
//! run completes on the surviving workers with a coherent report.

use std::time::Duration;
use versa_core::{DeviceKind, FailureKind, SchedulerKind, VersionId, WorkerId};
use versa_mem::DataId;
use versa_runtime::{Runtime, RuntimeConfig};
use versa_sim::{NodeFaultRule, PlatformConfig, SimNode, TraceEvent};
use versa_trace::TraceConfig;

const TASKS: usize = 48;
const TILE: u64 = 1 << 20;

/// 2 local SMP workers + the given remote nodes, one 1 ms template,
/// `TASKS` independent tasks over 1 MB tiles.
fn cluster_rt(nodes: Vec<SimNode>, node_rules: Vec<NodeFaultRule>) -> Runtime {
    cluster_rt_with(nodes, node_rules, SchedulerKind::versioning())
}

fn cluster_rt_with(
    nodes: Vec<SimNode>,
    node_rules: Vec<NodeFaultRule>,
    scheduler: SchedulerKind,
) -> Runtime {
    let mut platform = PlatformConfig::minotauro(2, 0);
    platform.nodes = nodes;
    platform.faults.node_rules = node_rules;
    let config = RuntimeConfig {
        tracing: TraceConfig::on(),
        ..RuntimeConfig::with_scheduler(scheduler)
    };
    let mut rt = Runtime::simulated(config, platform);
    let tpl = rt.template("work").main("smp", &[DeviceKind::Smp]).register();
    rt.bind_cost(tpl, VersionId(0), |_| Duration::from_millis(1));
    let tiles: Vec<DataId> = (0..TASKS).map(|_| rt.alloc_bytes(TILE)).collect();
    for &t in &tiles {
        rt.task(tpl).read_write(t).submit();
    }
    rt
}

/// A node with `workers` workers behind a deliberately slow NIC
/// (100 MB/s, so 1 MB tile shipments dominate and the learned-bandwidth
/// bids become visible).
fn slow_node(workers: usize) -> SimNode {
    let mut n = SimNode::new(workers);
    n.nic.bandwidth = 1e8;
    n.nic.latency = Duration::from_micros(50);
    n
}

#[test]
fn nodes_extend_the_worker_pool_and_map_to_node_ids() {
    let rt = cluster_rt(vec![SimNode::new(2), SimNode::new(3)], vec![]);
    let workers = rt.workers();
    assert_eq!(workers.len(), 2 + 2 + 3);
    assert!(workers.iter().all(|w| w.device == DeviceKind::Smp));
    let nodes: Vec<u16> = (0..workers.len())
        .map(|i| rt.node_of_worker(WorkerId(i as u16)))
        .collect();
    assert_eq!(nodes, vec![0, 0, 1, 1, 2, 2, 2]);
}

#[test]
fn node_drop_mid_run_requeues_and_completes() {
    let mut rt = cluster_rt(
        vec![slow_node(2)],
        vec![NodeFaultRule::drop_node(1, Duration::from_millis(4))],
    );
    let report = rt.run().expect("node loss alone must never abort a run");

    assert!(report.completed, "all tasks completed on the survivors");
    assert_eq!(report.tasks_executed, TASKS as u64);
    let lost: Vec<_> = report
        .failures
        .events
        .iter()
        .filter(|f| f.kind == FailureKind::NodeLost)
        .collect();
    assert!(!lost.is_empty(), "tasks were running on the node when it died");
    assert!(
        lost.iter().all(|f| rt.node_of_worker(f.worker) == 1),
        "NodeLost failures are all attributed to the dead node's workers"
    );
    assert!(
        report.failures.quarantined.is_empty(),
        "a node's death must not quarantine any version"
    );
    assert_eq!(
        report.failures.retries as usize,
        report.failures.events.len(),
        "every lost attempt was retried"
    );
    // Coherent partial accounting: per-worker completions sum to the
    // total, and the dead node's workers stop contributing after the
    // loss (they executed a handful of tasks at most).
    assert_eq!(report.worker_task_counts.iter().sum::<u64>(), TASKS as u64);
    let on_dead_node: u64 = report.worker_task_counts[2..4].iter().sum();
    assert!(
        on_dead_node < TASKS as u64 / 2,
        "retired workers kept executing: {on_dead_node} tasks on the dead node"
    );

    let trace = report.trace.as_ref().expect("tracing was on");
    let violations = versa_trace::invariants::check(trace);
    assert!(violations.is_empty(), "trace invariants violated: {violations:?}");
    assert!(
        trace.events().iter().any(|e| matches!(e, TraceEvent::NodeLost { node: 1, .. })),
        "the loss itself is a first-class trace event"
    );
}

#[test]
fn heartbeat_timeout_is_detected_late_but_handled_identically() {
    // Default (fast) NICs: tasks start promptly, so the recorded loss
    // stamps track detection times rather than straggling starts.
    let mut rt = cluster_rt(
        vec![SimNode::new(1), SimNode::new(1)],
        vec![
            NodeFaultRule::drop_node(1, Duration::from_millis(3)),
            NodeFaultRule::heartbeat_timeout(2, Duration::from_millis(3)),
        ],
    );
    let report = rt.run().expect("losing every remote node still completes locally");
    assert!(report.completed);
    assert_eq!(report.tasks_executed, TASKS as u64);

    let trace = report.trace.as_ref().expect("tracing was on");
    let losses: Vec<(u64, u16)> = trace
        .events()
        .iter()
        .filter_map(|e| match *e {
            TraceEvent::NodeLost { time, node } => Some((time.0, node)),
            _ => None,
        })
        .collect();
    let drop_at = losses.iter().find(|&&(_, n)| n == 1).expect("node 1 loss recorded").0;
    let hb_at = losses.iter().find(|&&(_, n)| n == 2).expect("node 2 loss recorded").0;
    assert!(
        hb_at > drop_at,
        "same fault time, but heartbeat silence is detected a timeout later \
         (drop at {drop_at} ns, heartbeat at {hb_at} ns)"
    );
    let violations = versa_trace::invariants::check(trace);
    assert!(violations.is_empty(), "trace invariants violated: {violations:?}");
}

#[test]
fn remote_bids_price_the_nic_link() {
    // The §VII locality-aware extension is what turns the learned
    // bandwidth EWMA into a transfer term inside each bid.
    let mut rt = cluster_rt_with(
        vec![slow_node(2)],
        vec![],
        SchedulerKind::locality_versioning(),
    );
    let report = rt.run().expect("run failed");
    assert!(report.completed);

    // With tracing on, the engine drains every scheduler decision into
    // the trace. Reliable-phase decisions carry every bid considered;
    // remote-node workers must be bidding, and once the bandwidth EWMA
    // has observed NIC shipments their transfer estimates are non-zero
    // (the scheduler has learned the link like a PCIe lane).
    let trace = report.trace.as_ref().expect("tracing was on");
    let remote_bids: Vec<&versa_trace::Bid> = trace
        .events()
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Decision(d) => Some(d.bids.iter()),
            _ => None,
        })
        .flatten()
        .filter(|b| rt.node_of_worker(b.worker) == 1)
        .collect();
    assert!(!remote_bids.is_empty(), "remote workers never entered an auction");
    assert!(
        remote_bids.iter().any(|b| b.transfer > Duration::ZERO),
        "no remote bid priced the NIC shipment: the link EWMA never learned"
    );
}
