//! In-process loopback tests for the remote-node data plane: a mock
//! [`RemoteNode`] standing in for a `versa-net` worker process. These
//! prove the coordinator-side machinery — mirror-space shipping,
//! name-based dispatch, write-back, node-loss retirement/requeue, NIC
//! bandwidth learning — without any sockets.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;
use versa_core::{DeviceKind, FailureKind, SchedulerKind, VersionId};
use versa_mem::{DataId, MemSpace};
use versa_runtime::{
    NativeConfig, RemoteCaps, RemoteDone, RemoteError, RemoteExec, RemoteNode, Runtime,
    RuntimeConfig,
};
use versa_trace::TraceEvent;

/// A stand-in for a remote worker process: its own byte store (the
/// "remote arena") plus the same `scale2` kernel the coordinator binds
/// locally. Optionally dies after a fixed number of executions.
struct MockNode {
    workers: usize,
    store: Mutex<HashMap<DataId, Vec<u8>>>,
    execs: AtomicU32,
    ships: AtomicU32,
    /// Executions before the node "dies" (`u32::MAX` = immortal).
    fail_after: u32,
}

impl MockNode {
    fn new(workers: usize, fail_after: u32) -> MockNode {
        MockNode {
            workers,
            store: Mutex::new(HashMap::new()),
            execs: AtomicU32::new(0),
            ships: AtomicU32::new(0),
            fail_after,
        }
    }
}

impl RemoteNode for MockNode {
    fn caps(&self) -> RemoteCaps {
        RemoteCaps {
            name: "mock:0".into(),
            smp_workers: self.workers,
            simd_tier: "scalar".into(),
        }
    }

    fn ship(&self, data: DataId, bytes: &[u8]) -> Result<(), RemoteError> {
        if self.execs.load(Ordering::SeqCst) >= self.fail_after {
            return Err(RemoteError::Lost("connection reset".into()));
        }
        self.ships.fetch_add(1, Ordering::SeqCst);
        self.store.lock().unwrap().insert(data, bytes.to_vec());
        Ok(())
    }

    fn exec(&self, req: &RemoteExec) -> Result<RemoteDone, RemoteError> {
        let n = self.execs.fetch_add(1, Ordering::SeqCst);
        if n >= self.fail_after {
            return Err(RemoteError::Lost("connection reset".into()));
        }
        if req.template != "scale2" {
            return Err(RemoteError::Task(format!("unknown template {:?}", req.template)));
        }
        let mut store = self.store.lock().unwrap();
        let acc = &req.accesses[0];
        // Out-only buffers were never shipped; materialize them zeroed,
        // exactly as the real worker process does.
        let bytes = store
            .entry(acc.region.data)
            .or_insert_with(|| vec![0u8; acc.alloc_len as usize]);
        for chunk in bytes.chunks_exact_mut(8) {
            let v = f64::from_ne_bytes(chunk.try_into().unwrap());
            chunk.copy_from_slice(&(v * 2.0).to_ne_bytes());
        }
        Ok(RemoteDone {
            kernel_time: Duration::from_micros(50),
            writes: vec![(acc.region.data, bytes.clone())],
        })
    }
}

/// 2 local SMP workers, `scale2` bound; the caller decides whether to
/// attach a remote node before submitting.
fn scale2_runtime() -> (Runtime, versa_core::TemplateId) {
    let mut rt = Runtime::native(
        RuntimeConfig::with_scheduler(SchedulerKind::versioning()),
        NativeConfig::new(2, 0),
    );
    let tpl = rt.template("scale2").main("smp", &[DeviceKind::Smp]).register();
    rt.bind_native(tpl, VersionId(0), |ctx| {
        for v in ctx.f64_mut(0) {
            *v *= 2.0;
        }
    });
    (rt, tpl)
}

/// Run `rounds` dependent `scale2` passes over `bufs` buffers and return
/// the final contents of each.
fn run_scale2(rt: &mut Runtime, tpl: versa_core::TemplateId, bufs: usize, rounds: usize) -> Vec<Vec<f64>> {
    let ids: Vec<DataId> =
        (0..bufs).map(|i| rt.alloc_from_f64(&[i as f64 + 1.0, 0.5, -3.25, 1e6])).collect();
    for _ in 0..rounds {
        for &id in &ids {
            rt.task(tpl).read_write(id).submit();
        }
    }
    rt.run().expect("run failed");
    ids.iter().map(|&id| rt.read_f64(id)).collect()
}

#[test]
fn loopback_cluster_matches_single_process() {
    let (mut local, tpl) = scale2_runtime();
    let expected = run_scale2(&mut local, tpl, 8, 3);

    let (mut clustered, tpl) = scale2_runtime();
    let node = Arc::new(MockNode::new(2, u32::MAX));
    let id = clustered.attach_remote_node(node.clone());
    assert_eq!(id, 1);
    assert_eq!(clustered.workers().len(), 4, "2 local + 2 remote workers");
    let got = run_scale2(&mut clustered, tpl, 8, 3);

    assert_eq!(got, expected, "cluster results must be numerically identical");
    assert!(
        node.execs.load(Ordering::SeqCst) > 0,
        "remote workers never executed anything"
    );
    assert!(node.ships.load(Ordering::SeqCst) > 0, "no tiles were shipped");
}

#[test]
fn node_loss_mid_job_requeues_and_completes() {
    let (mut rt, tpl) = scale2_runtime();
    rt.config_mut().tracing = versa_trace::TraceConfig::on();
    let node = Arc::new(MockNode::new(2, 3));
    rt.attach_remote_node(node.clone());

    let ids: Vec<DataId> = (0..12).map(|i| rt.alloc_from_f64(&[i as f64, 1.0])).collect();
    for _ in 0..3 {
        for &id in &ids {
            rt.task(tpl).read_write(id).submit();
        }
    }
    let report = rt.run().expect("node loss must not abort the run");
    assert!(report.completed, "all tasks must complete via requeue");
    for (i, &id) in ids.iter().enumerate() {
        assert_eq!(rt.read_f64(id), vec![i as f64 * 8.0, 8.0], "results correct after requeue");
    }

    let lost: Vec<_> = report
        .failures
        .events
        .iter()
        .filter(|f| f.kind == FailureKind::NodeLost)
        .collect();
    assert!(!lost.is_empty(), "the loss must be reported as NodeLost failures");
    assert!(report.failures.retries >= lost.len() as u64, "each loss requeues");
    assert!(
        report.failures.quarantined.is_empty(),
        "node loss must not quarantine versions: {:?}",
        report.failures.quarantined
    );

    // The trace records the loss, places remote workers on node 1, and
    // upholds the cross-node invariant (nothing starts on the dead node
    // after the loss).
    let trace = report.trace.expect("tracing was on");
    assert!(
        trace.events().iter().any(|e| matches!(e, TraceEvent::NodeLost { node: 1, .. })),
        "trace must record the node loss"
    );
    assert!(trace.meta.workers.iter().any(|w| w.node == 1));
    let violations = versa_trace::invariants::check(&trace);
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn remote_link_bandwidth_is_learned() {
    let (mut rt, tpl) = scale2_runtime();
    rt.attach_remote_node(Arc::new(MockNode::new(2, u32::MAX)));
    // NativeConfig::new(2, 0) has no GPUs, so the mirror space of node 1
    // is the arena's first device space.
    let mirror = MemSpace::device(0);
    assert!(
        rt.versioning().unwrap().measured_bandwidth(mirror).is_none(),
        "no NIC samples before any shipment"
    );
    run_scale2(&mut rt, tpl, 6, 2);
    let bw = rt
        .versioning()
        .unwrap()
        .measured_bandwidth(mirror)
        .expect("shipping tiles must feed the bandwidth EWMA");
    assert!(bw > 0.0, "learned NIC bandwidth must be positive, got {bw}");
}
