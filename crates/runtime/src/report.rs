//! Run reports: everything the paper's evaluation section measures,
//! plus the failure/retry accounting added by the fault-tolerance
//! subsystem.

use std::collections::HashMap;
use std::fmt;
use std::time::Duration;
use versa_core::{BucketKey, FailureKind, TaskId, TemplateId, TemplateRegistry, VersionId, WorkerId};
use versa_mem::TransferStats;

/// One failed task execution attempt.
#[derive(Clone, Debug)]
pub struct TaskFailure {
    /// The task whose execution failed.
    pub task: TaskId,
    /// Its template.
    pub template: TemplateId,
    /// The version that failed.
    pub version: VersionId,
    /// The worker it was running on.
    pub worker: WorkerId,
    /// Panic vs. injected fault.
    pub kind: FailureKind,
    /// Panic payload / fault description.
    pub message: String,
    /// Which attempt this was (1 = first execution).
    pub attempt: u32,
}

/// A version quarantined by the scheduler during the run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuarantinedVersion {
    /// Template the version belongs to.
    pub template: TemplateId,
    /// Size-group key it is quarantined in.
    pub bucket: BucketKey,
    /// The quarantined version.
    pub version: VersionId,
    /// Consecutive failures that triggered the quarantine.
    pub failures: u64,
}

impl From<versa_core::QuarantineEntry> for QuarantinedVersion {
    fn from(e: versa_core::QuarantineEntry) -> Self {
        QuarantinedVersion {
            template: e.template,
            bucket: e.bucket,
            version: e.version,
            failures: e.failures,
        }
    }
}

/// Failure/retry accounting of one run. Default (all zeros/empty) means
/// the run saw no failures.
#[derive(Clone, Debug, Default)]
pub struct FailureReport {
    /// Every failed execution attempt, in occurrence order.
    pub events: Vec<TaskFailure>,
    /// Re-entries into the ready pool after a failure (a task that
    /// failed twice before completing contributes 2 retries).
    pub retries: u64,
    /// Versions left quarantined at the end of the run.
    pub quarantined: Vec<QuarantinedVersion>,
}

impl FailureReport {
    /// Total failed attempts.
    pub fn failure_count(&self) -> u64 {
        self.events.len() as u64
    }

    /// Whether the run completed without a single failure.
    pub fn is_clean(&self) -> bool {
        self.events.is_empty()
    }
}

/// A run aborted because some task exhausted its retry budget. Carries
/// the partial [`RunReport`] accumulated up to the abort, so callers can
/// still inspect what executed, failed, and was quarantined.
#[derive(Debug)]
pub struct RunError {
    /// The task that exhausted its retries.
    pub task: TaskId,
    /// The kind of its final failure.
    pub kind: FailureKind,
    /// The final failure's message.
    pub message: String,
    /// Partial report: tasks executed, failures, and quarantine state up
    /// to the abort. Its `makespan` covers the aborted region. Boxed to
    /// keep the `Err` variant of `Runtime::run` small.
    pub report: Box<RunReport>,
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "task {:?} exhausted its retries (last failure: {}: {}); {} failures total",
            self.task,
            self.kind,
            self.message,
            self.report.failures.failure_count()
        )
    }
}

impl std::error::Error for RunError {}

/// Per-worker data-movement breakdown for one run: how many bytes were
/// staged into the worker's space for its tasks, how long the staging
/// lane spent moving them, how long the worker computed, and how much of
/// the staging time was hidden under kernel execution (the whole point
/// of the overlapped transfer pipeline).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WorkerTransferStats {
    /// Bytes copied into this worker's space for its tasks.
    pub staged_bytes: u64,
    /// Number of staged copies.
    pub staged_count: u64,
    /// Wall (or virtual) time spent moving those bytes.
    pub stage_time: Duration,
    /// Wall (or virtual) time spent executing kernels.
    pub compute_time: Duration,
    /// Portion of `stage_time` that ran concurrently with a kernel on
    /// the same worker (native async engine only; zero elsewhere).
    pub overlap_time: Duration,
}

impl WorkerTransferStats {
    /// Fraction (0..=1) of staging time hidden under compute. Zero when
    /// the worker staged nothing.
    pub fn overlap_ratio(&self) -> f64 {
        if self.stage_time.is_zero() {
            0.0
        } else {
            (self.overlap_time.as_secs_f64() / self.stage_time.as_secs_f64()).min(1.0)
        }
    }

    /// Accumulate another breakdown into this one (used by the serving
    /// layer to aggregate across waves).
    pub fn merge(&mut self, other: &WorkerTransferStats) {
        self.staged_bytes += other.staged_bytes;
        self.staged_count += other.staged_count;
        self.stage_time += other.stage_time;
        self.compute_time += other.compute_time;
        self.overlap_time += other.overlap_time;
    }
}

/// Measurements of one `run()` (one taskwait region): the quantities
/// behind every figure of the paper's §V — makespan (→ GFLOP/s or wall
/// time), bytes transferred per category, and per-version execution
/// counts.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Scheduler policy name.
    pub scheduler: String,
    /// End-to-end completion time of the region (virtual time in the
    /// simulated engine, wall time in the native engine), including the
    /// final flush when enabled.
    pub makespan: Duration,
    /// Number of tasks executed in this run.
    pub tasks_executed: u64,
    /// Transfer accounting (paper Figs. 7, 10, 13).
    pub transfers: TransferStats,
    /// Executions per (template, version) (paper Figs. 8, 11, 14, 15).
    pub version_counts: HashMap<(TemplateId, VersionId), u64>,
    /// Tasks executed per worker, indexed by worker id.
    pub worker_task_counts: Vec<u64>,
    /// Accumulated kernel time per worker, indexed by worker id —
    /// divide by `makespan` for per-worker utilization.
    pub worker_busy: Vec<Duration>,
    /// Per-worker transfer breakdown (bytes staged, staging vs compute
    /// time, overlap ratio), indexed by worker id.
    pub worker_transfers: Vec<WorkerTransferStats>,
    /// Whether every submitted task finished in this run. Always true
    /// for a successful unbounded [`run()`](crate::Runtime::run); a
    /// bounded wave ([`run_bounded`](crate::Runtime::run_bounded)) may
    /// return with work still outstanding.
    pub completed: bool,
    /// Rendered Table I-style profile dump (versioning scheduler only).
    pub profile_table: Option<String>,
    /// The structured execution trace, when
    /// [`RuntimeConfig::tracing`](crate::RuntimeConfig::tracing) was
    /// enabled (both engines). Analyze with
    /// [`versa_trace::TraceAnalysis`], export with
    /// [`versa_trace::chrome`], or serialize with
    /// [`Trace::to_text`](versa_trace::Trace::to_text) for
    /// `versa-analyze`.
    pub trace: Option<versa_trace::Trace>,
    /// Failure and retry accounting (empty for a clean run).
    pub failures: FailureReport,
}

impl RunReport {
    /// Achieved GFLOP/s given the run's useful floating-point work.
    pub fn gflops(&self, flops: f64) -> f64 {
        flops / self.makespan.as_secs_f64() / 1e9
    }

    /// Executions of each version of `template`, in version order
    /// (missing versions count 0).
    pub fn version_histogram(&self, template: TemplateId, n_versions: usize) -> Vec<u64> {
        (0..n_versions)
            .map(|v| {
                self.version_counts.get(&(template, VersionId(v as u16))).copied().unwrap_or(0)
            })
            .collect()
    }

    /// Share (0..=1) of `template` executions that each version took.
    pub fn version_shares(&self, template: TemplateId, n_versions: usize) -> Vec<f64> {
        let hist = self.version_histogram(template, n_versions);
        let total: u64 = hist.iter().sum();
        if total == 0 {
            return vec![0.0; n_versions];
        }
        hist.into_iter().map(|c| c as f64 / total as f64).collect()
    }

    /// Human-readable one-run summary.
    pub fn summary(&self, registry: &TemplateRegistry) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "scheduler={} makespan={:.3}s tasks={}",
            self.scheduler,
            self.makespan.as_secs_f64(),
            self.tasks_executed
        );
        let _ = writeln!(
            out,
            "transfers: input={:.1}MB output={:.1}MB device={:.1}MB",
            self.transfers.input_bytes as f64 / 1e6,
            self.transfers.output_bytes as f64 / 1e6,
            self.transfers.device_bytes as f64 / 1e6,
        );
        if !self.failures.is_clean() {
            let _ = writeln!(
                out,
                "failures: {} retries={} quarantined={}",
                self.failures.failure_count(),
                self.failures.retries,
                self.failures.quarantined.len()
            );
        }
        for tpl in registry.iter() {
            let hist = self.version_histogram(tpl.id, tpl.version_count());
            if hist.iter().sum::<u64>() == 0 {
                continue;
            }
            let _ = write!(out, "{}:", tpl.name);
            for (i, count) in hist.iter().enumerate() {
                let _ = write!(out, " {}={}", tpl.version(VersionId(i as u16)).name, count);
            }
            let _ = writeln!(out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use versa_core::DeviceKind;

    fn report() -> RunReport {
        let mut version_counts = HashMap::new();
        version_counts.insert((TemplateId(0), VersionId(0)), 90);
        version_counts.insert((TemplateId(0), VersionId(2)), 10);
        RunReport {
            scheduler: "versioning".into(),
            makespan: Duration::from_secs(2),
            tasks_executed: 100,
            transfers: TransferStats::default(),
            version_counts,
            worker_task_counts: vec![5, 5, 45, 45],
            worker_busy: vec![Duration::ZERO; 4],
            worker_transfers: vec![WorkerTransferStats::default(); 4],
            completed: true,
            profile_table: None,
            trace: None,
            failures: FailureReport::default(),
        }
    }

    #[test]
    fn gflops_normalizes_by_makespan() {
        let r = report();
        // 200 GFLOP over 2 s = 100 GFLOP/s.
        assert!((r.gflops(200e9) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_fills_missing_versions_with_zero() {
        let r = report();
        assert_eq!(r.version_histogram(TemplateId(0), 3), vec![90, 0, 10]);
        assert_eq!(r.version_histogram(TemplateId(9), 2), vec![0, 0]);
    }

    #[test]
    fn shares_sum_to_one() {
        let r = report();
        let shares = r.version_shares(TemplateId(0), 3);
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((shares[0] - 0.9).abs() < 1e-12);
        assert_eq!(r.version_shares(TemplateId(9), 2), vec![0.0, 0.0]);
    }

    #[test]
    fn overlap_ratio_is_hidden_share_of_stage_time() {
        let mut w = WorkerTransferStats::default();
        assert_eq!(w.overlap_ratio(), 0.0, "no staging → no ratio");
        w.staged_bytes = 1000;
        w.staged_count = 2;
        w.stage_time = Duration::from_millis(100);
        w.overlap_time = Duration::from_millis(75);
        assert!((w.overlap_ratio() - 0.75).abs() < 1e-12);
        let mut acc = WorkerTransferStats::default();
        acc.merge(&w);
        acc.merge(&w);
        assert_eq!(acc.staged_bytes, 2000);
        assert_eq!(acc.staged_count, 4);
        assert_eq!(acc.stage_time, Duration::from_millis(200));
        assert!((acc.overlap_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn summary_names_versions() {
        let mut reg = TemplateRegistry::new();
        reg.template("matmul_tile")
            .main("cublas", &[DeviceKind::Cuda])
            .version("cuda", &[DeviceKind::Cuda])
            .version("cblas", &[DeviceKind::Smp])
            .register();
        let s = report().summary(&reg);
        assert!(s.contains("cublas=90"));
        assert!(s.contains("cblas=10"));
        assert!(s.contains("scheduler=versioning"));
    }
}
