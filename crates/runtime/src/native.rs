//! Real execution engine: OS worker threads, real memory copies between
//! per-device arenas, real Rust kernels.
//!
//! SMP workers execute kernels on one core each. An *emulated GPU* is a
//! worker whose kernels may parallelize over [`NativeConfig::gpu_lanes`]
//! cores and whose memory is a separate arena space — it genuinely cannot
//! read host buffers, so the coherence machinery is exercised for real.
//! Each emulated-GPU worker owns a persistent [`LanePool`]: its lane
//! threads are spawned once when the worker starts and parked between
//! kernels, so running a multi-lane kernel never spawns an OS thread.
//! Kernels reach the pool through [`KernelCtx::exec`] (or the
//! [`KernelCtx::par_bands`] convenience). Task durations reported to the
//! scheduler are wall-clock kernel times, so the versioning scheduler
//! learns real device speed ratios.

use crate::assign::drain_pool;
use crate::lanepool::LanePool;
use crate::report::{FailureReport, RunError, TaskFailure, WorkerTransferStats};
use crate::runtime::{EngineKind, NativeFn};
use crate::{RunReport, Runtime};
use std::collections::{HashMap, VecDeque};
use std::ops::Range;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};
use versa_core::{FailureKind, TaskId, TemplateId, VersionId, WorkerId};
use versa_kernels::chunk_ranges;
use versa_kernels::exec::{LaneExec, SerialExec};
use versa_mem::{
    AccessMode, AlignedBuf, Arena, DataId, HandleState, MemSpace, ReadyCell, Region, StagingLedger,
    Transfer, TransferStats,
};
use versa_trace::{TraceEvent, TraceSink, Ts};

/// Wall-clock offset from the run's epoch as a trace timestamp.
fn ts(wall0: Instant) -> Ts {
    Ts(wall0.elapsed().as_nanos() as u64)
}

/// Native-engine sizing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NativeConfig {
    /// Number of single-core SMP workers.
    pub smp_workers: usize,
    /// Number of emulated GPU devices (one worker each, own memory space).
    pub gpus: usize,
    /// Cores an emulated GPU kernel may parallelize over.
    pub gpu_lanes: usize,
    /// Emulated interconnect bandwidth in bytes/second: each planned
    /// transfer takes at least `bytes / link_bandwidth` wall time (the
    /// memcpy runs, then the mover sleeps off the residual). `None`
    /// (default) moves bytes at memcpy speed — the historical behaviour.
    /// Real machines pay PCIe for every copy; our in-process "devices"
    /// otherwise copy at DRAM speed, which makes transfer scheduling
    /// decisions invisible. Applied identically on the synchronous and
    /// asynchronous staging paths.
    pub link_bandwidth: Option<u64>,
}

impl NativeConfig {
    /// `smp` SMP workers + `gpus` emulated GPUs with the default 4 lanes.
    pub fn new(smp: usize, gpus: usize) -> NativeConfig {
        NativeConfig { smp_workers: smp, gpus, gpu_lanes: 4, link_bandwidth: None }
    }

    /// Validate the configuration. Shape problems (no workers, zero-lane
    /// GPUs) are errors; oversubscription is only a [`warning`].
    ///
    /// [`warning`]: NativeConfig::warnings
    pub fn validate(&self) -> Result<(), String> {
        if self.smp_workers + self.gpus == 0 {
            return Err("native config has no workers".into());
        }
        if self.gpus > 0 && self.gpu_lanes == 0 {
            return Err("emulated GPUs need at least one lane".into());
        }
        if self.link_bandwidth == Some(0) {
            return Err("link_bandwidth must be positive (use None for unthrottled)".into());
        }
        Ok(())
    }

    /// Non-fatal configuration diagnostics. Asking one emulated GPU for
    /// more lanes than the machine has hardware threads still runs
    /// correctly (lanes are ordinary OS threads) — it just can't speed
    /// anything up, so it is reported here rather than rejected by
    /// [`validate`](NativeConfig::validate).
    pub fn warnings(&self) -> Vec<String> {
        let mut out = Vec::new();
        let avail = std::thread::available_parallelism().map_or(1, |p| p.get());
        if self.gpus > 0 && self.gpu_lanes > avail {
            out.push(format!(
                "gpu_lanes = {} exceeds available parallelism ({avail}); \
                 lanes will time-share cores",
                self.gpu_lanes
            ));
        }
        out
    }
}

/// Two SMP workers and one emulated GPU with the default 4 lanes —
/// the smallest heterogeneous setup (`NativeConfig::new(2, 1)`).
impl Default for NativeConfig {
    fn default() -> Self {
        NativeConfig::new(2, 1)
    }
}

enum Slot {
    /// Access into a taken-out buffer: index + byte range. `writable` is
    /// false for an `input` clause aliasing a buffer the task also
    /// writes (same memory, read-only view).
    Owned { buf: usize, range: Range<usize>, writable: bool },
    /// Read-only access that does not alias any written buffer: a shared
    /// handle to the arena's own buffer (zero-copy — the arena keeps
    /// writers out until the last reader drops its handle).
    Shared(Arc<AlignedBuf>, Range<usize>),
}

/// The view a native kernel gets of its task: one argument per access
/// clause, in declaration order, plus the executor carrying the device's
/// parallelism.
pub struct KernelCtx<'a> {
    bufs: &'a mut [AlignedBuf],
    slots: Vec<Slot>,
    exec: &'a dyn LaneExec,
}

impl<'a> KernelCtx<'a> {
    /// Cores this kernel may use (1 on SMP workers, `gpu_lanes` on
    /// emulated GPUs).
    pub fn lanes(&self) -> usize {
        self.exec.lanes()
    }

    /// The executor carrying this worker's parallelism: a persistent
    /// lane pool on emulated GPUs, serial on SMP workers. Hand it to the
    /// `_on` kernel entry points.
    pub fn exec(&self) -> &'a dyn LaneExec {
        self.exec
    }

    /// Run `f` once per contiguous band of `0..n`, one band per lane,
    /// in parallel on this worker's lanes. A convenience for ad-hoc
    /// kernels that don't take a [`LaneExec`] themselves.
    pub fn par_bands(&self, n: usize, f: impl Fn(Range<usize>) + Sync) {
        let f = &f;
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = chunk_ranges(n, self.exec.lanes())
            .into_iter()
            .map(|band| Box::new(move || f(band)) as Box<dyn FnOnce() + Send + '_>)
            .collect();
        self.exec.run_batch(jobs);
    }

    /// Number of arguments (access clauses).
    pub fn arg_count(&self) -> usize {
        self.slots.len()
    }

    /// Raw bytes of argument `i`.
    pub fn bytes(&self, i: usize) -> &[u8] {
        match &self.slots[i] {
            Slot::Owned { buf, range, .. } => &self.bufs[*buf].as_bytes()[range.clone()],
            Slot::Shared(b, range) => &b.as_bytes()[range.clone()],
        }
    }

    /// Mutable raw bytes of argument `i`.
    ///
    /// # Panics
    /// Panics if access `i` is an `input` (read-only) clause.
    pub fn bytes_mut(&mut self, i: usize) -> &mut [u8] {
        match &self.slots[i] {
            Slot::Owned { buf, range, writable: true } => {
                &mut self.bufs[*buf].as_bytes_mut()[range.clone()]
            }
            _ => panic!("argument {i} is read-only (input clause)"),
        }
    }

    /// Argument `i` as `f64`s.
    pub fn f64(&self, i: usize) -> &[f64] {
        let (pre, mid, post) = unsafe { self.bytes(i).align_to::<f64>() };
        assert!(pre.is_empty() && post.is_empty(), "argument {i} is not f64-aligned");
        mid
    }

    /// Argument `i` as mutable `f64`s (write/inout accesses only).
    pub fn f64_mut(&mut self, i: usize) -> &mut [f64] {
        let (pre, mid, post) = unsafe { self.bytes_mut(i).align_to_mut::<f64>() };
        assert!(pre.is_empty() && post.is_empty(), "argument {i} is not f64-aligned");
        mid
    }

    /// Argument `i` as `f32`s.
    pub fn f32(&self, i: usize) -> &[f32] {
        let (pre, mid, post) = unsafe { self.bytes(i).align_to::<f32>() };
        assert!(pre.is_empty() && post.is_empty(), "argument {i} is not f32-aligned");
        mid
    }

    /// Argument `i` as mutable `f32`s (write/inout accesses only).
    pub fn f32_mut(&mut self, i: usize) -> &mut [f32] {
        let (pre, mid, post) = unsafe { self.bytes_mut(i).align_to_mut::<f32>() };
        assert!(pre.is_empty() && post.is_empty(), "argument {i} is not f32-aligned");
        mid
    }

    /// Panic unless read argument `r` is backed by memory disjoint from
    /// written argument `w` (shared slots never alias taken-out buffers;
    /// owned slots alias iff they view the same buffer).
    fn assert_disjoint(&self, r: usize, w: usize) {
        if let (Slot::Owned { buf: rb, .. }, Slot::Owned { buf: wb, .. }) =
            (&self.slots[r], &self.slots[w])
        {
            assert!(
                rb != wb,
                "argument {r} aliases written argument {w}; borrow them separately"
            );
        }
    }

    /// Borrow several read arguments and one written argument at once as
    /// `f64` slices — the shape every matmul/Cholesky kernel needs
    /// (`C ← f(A, B, …, C)`) and one the plain accessors can't express
    /// because `f64_mut` borrows the whole context mutably.
    ///
    /// # Panics
    /// Panics if `rw` is not a write/inout clause, if any read argument
    /// aliases `rw`, or on misalignment.
    pub fn f64_reads_and_mut(&mut self, reads: &[usize], rw: usize) -> (Vec<&[f64]>, &mut [f64]) {
        for &r in reads {
            self.assert_disjoint(r, rw);
        }
        // Safety: the written slice comes from the taken-out buffer of
        // `rw`; every read slice was just checked to be backed by
        // different memory, so the borrows are disjoint.
        let out: *mut [f64] = self.f64_mut(rw);
        let reads = reads.iter().map(|&r| unsafe { &*(self.f64(r) as *const [f64]) }).collect();
        (reads, unsafe { &mut *out })
    }

    /// `f32` twin of [`KernelCtx::f64_reads_and_mut`].
    ///
    /// # Panics
    /// As [`KernelCtx::f64_reads_and_mut`].
    pub fn f32_reads_and_mut(&mut self, reads: &[usize], rw: usize) -> (Vec<&[f32]>, &mut [f32]) {
        for &r in reads {
            self.assert_disjoint(r, rw);
        }
        let out: *mut [f32] = self.f32_mut(rw);
        let reads = reads.iter().map(|&r| unsafe { &*(self.f32(r) as *const [f32]) }).collect();
        (reads, unsafe { &mut *out })
    }
}

struct WorkItem {
    task: TaskId,
    kernel: NativeFn,
    accesses: Vec<(Region, AccessMode)>,
    /// Trace identity of this execution attempt (version + template from
    /// the assignment, attempt = failures so far + 1, both computed by
    /// the coordinator at dispatch time).
    version: VersionId,
    template: TemplateId,
    attempt: u32,
}

enum Msg {
    Work(WorkItem),
    Stop,
}

/// Extract a readable message from a panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_else(|| "kernel panicked".to_string())
}

/// Sleep off the residual of an emulated link budget: a transfer of
/// `bytes` bytes must take at least `bytes / bw` seconds of wall time,
/// of which `spent` already elapsed in the memcpy.
fn throttle_link(link_bandwidth: Option<u64>, bytes: u64, spent: Duration) {
    let Some(bw) = link_bandwidth else { return };
    let budget = Duration::from_secs_f64(bytes as f64 / bw as f64);
    if let Some(residual) = budget.checked_sub(spent) {
        std::thread::sleep(residual);
    }
}

/// One worker thread: receive tasks, run kernels against this worker's
/// arena space, report wall-clock kernel durations. Multi-lane workers
/// build their lane pool here, once, before the first task arrives.
#[allow(clippy::too_many_arguments)]
fn worker_loop(
    rx: mpsc::Receiver<Msg>,
    done: mpsc::Sender<(WorkerId, TaskId, Result<Duration, WorkFailure>)>,
    arena: Arc<Arena>,
    space: versa_mem::MemSpace,
    lanes: usize,
    wid: WorkerId,
    sink: Option<Arc<TraceSink>>,
    wall0: Instant,
) {
    let pool = (lanes > 1).then(|| LanePool::new(lanes));
    let exec: &dyn LaneExec = match &pool {
        Some(pool) => pool,
        None => &SerialExec,
    };
    while let Ok(Msg::Work(item)) = rx.recv() {
        let task = item.task;
        let (version, template, attempt) = (item.version, item.template, item.attempt);
        // This thread records its own lifecycle events into its own lane,
        // so per-worker spans are monotonic by construction.
        if let Some(sink) = &sink {
            sink.record(
                wid.index(),
                TraceEvent::TaskStart { time: ts(wall0), task, worker: wid, version, template, attempt },
            );
        }
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            execute_item(item, &arena, space, exec)
        }))
        .map_err(|p| WorkFailure { message: panic_message(p), kind: FailureKind::Panic });
        if let Some(sink) = &sink {
            let ev = match &outcome {
                Ok(measured) => TraceEvent::TaskEnd {
                    time: ts(wall0),
                    task,
                    worker: wid,
                    kernel_ns: measured.as_nanos() as u64,
                },
                Err(_) => TraceEvent::TaskFailed { time: ts(wall0), task, worker: wid, version, attempt },
            };
            sink.record(wid.index(), ev);
        }
        done.send((wid, task, outcome)).expect("coordinator hung up");
    }
}

/// How a sync-engine task execution failed: the message plus the failure
/// class the scheduler is charged with (`Panic` for kernel failures,
/// `NodeLost` when the hosting remote node disappeared).
pub(crate) struct WorkFailure {
    pub message: String,
    pub kind: FailureKind,
}

/// The worker shim for a remote node: same channel discipline as
/// [`worker_loop`], but the kernel runs on the remote machine. Copy-ins
/// were already shipped at transfer time, so the request carries only
/// metadata; returned output buffers are written back into the
/// coordinator's mirror space before completion is reported, keeping
/// every later read local.
#[allow(clippy::too_many_arguments)]
fn remote_worker_loop(
    rx: mpsc::Receiver<Msg>,
    done: mpsc::Sender<(WorkerId, TaskId, Result<Duration, WorkFailure>)>,
    node: Arc<dyn crate::remote::RemoteNode>,
    arena: Arc<Arena>,
    space: versa_mem::MemSpace,
    wid: WorkerId,
    names: Arc<HashMap<TemplateId, String>>,
    sink: Option<Arc<TraceSink>>,
    wall0: Instant,
) {
    use crate::remote::{RemoteAccess, RemoteError, RemoteExec};
    while let Ok(Msg::Work(item)) = rx.recv() {
        let task = item.task;
        let (version, template, attempt) = (item.version, item.template, item.attempt);
        if let Some(sink) = &sink {
            sink.record(
                wid.index(),
                TraceEvent::TaskStart { time: ts(wall0), task, worker: wid, version, template, attempt },
            );
        }
        let req = RemoteExec {
            task,
            template: names.get(&template).cloned().unwrap_or_default(),
            version,
            attempt,
            accesses: item
                .accesses
                .iter()
                .map(|(region, mode)| RemoteAccess {
                    region: *region,
                    mode: *mode,
                    // The mirror buffer exists for every access (perform
                    // for reads, ensure for outputs), so its length is
                    // the allocation length the node must materialize.
                    alloc_len: arena.read_arc(region.data, space).len() as u64,
                })
                .collect(),
        };
        let outcome = match node.exec(&req) {
            Ok(reply) => {
                for (data, bytes) in &reply.writes {
                    arena.write(*data, space, bytes);
                }
                Ok(reply.kernel_time)
            }
            Err(RemoteError::Task(message)) => {
                Err(WorkFailure { message, kind: FailureKind::Panic })
            }
            Err(RemoteError::Lost(message)) => {
                Err(WorkFailure { message, kind: FailureKind::NodeLost })
            }
        };
        if let Some(sink) = &sink {
            let ev = match &outcome {
                Ok(measured) => TraceEvent::TaskEnd {
                    time: ts(wall0),
                    task,
                    worker: wid,
                    kernel_ns: measured.as_nanos() as u64,
                },
                Err(_) => TraceEvent::TaskFailed { time: ts(wall0), task, worker: wid, version, attempt },
            };
            sink.record(wid.index(), ev);
        }
        done.send((wid, task, outcome)).expect("coordinator hung up");
    }
}

/// Execute a bound kernel outside the engine — the remote *worker
/// process* path (`versa-net`): no graph, no scheduler, just the kernel
/// against the given arena space, panic-safe.
pub(crate) fn execute_detached(
    kernel: NativeFn,
    accesses: Vec<(Region, AccessMode)>,
    arena: &Arena,
    space: versa_mem::MemSpace,
) -> Result<Duration, String> {
    let item = WorkItem {
        task: TaskId(0),
        kernel,
        accesses,
        version: VersionId(0),
        template: TemplateId(0),
        attempt: 1,
    };
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        execute_item(item, arena, space, &SerialExec)
    }))
    .map_err(panic_message)
}

/// Run one task's kernel against this worker's arena space, returning the
/// wall-clock kernel time.
fn execute_item(
    item: WorkItem,
    arena: &Arena,
    space: versa_mem::MemSpace,
    exec: &dyn LaneExec,
) -> Duration {
    // Buffers this task writes are taken out of the arena for the
    // kernel's duration; read-only arguments that don't alias them keep a
    // shared handle to the arena's buffer — no copy. Concurrent transfers
    // sourcing those buffers stay safe because the arena copies-on-write
    // around live handles.
    let mut write_ids: Vec<DataId> = Vec::new();
    for (region, mode) in &item.accesses {
        if mode.writes() {
            assert!(
                !write_ids.contains(&region.data),
                "task {:?} writes {:?} through two access clauses",
                item.task,
                region.data
            );
            write_ids.push(region.data);
        }
    }
    arena.with_buffers(space, &write_ids, |bufs| {
        let slots: Vec<Slot> = item
            .accesses
            .iter()
            .map(|(region, mode)| {
                let lo = region.offset as usize;
                let hi = region.end() as usize;
                if let Some(buf) = write_ids.iter().position(|d| *d == region.data) {
                    // Reads aliasing a written buffer view the same
                    // (taken-out) memory, read-only.
                    Slot::Owned { buf, range: lo..hi, writable: mode.writes() }
                } else {
                    Slot::Shared(arena.read_arc(region.data, space), lo..hi)
                }
            })
            .collect();
        let mut ctx = KernelCtx { bufs, slots, exec };
        let t0 = Instant::now();
        (item.kernel)(&mut ctx);
        t0.elapsed()
    })
}

/// Run every submitted task to completion on real threads.
///
/// A kernel panic does not take the process down: the worker catches the
/// unwind, the coordinator rolls the task back to the ready frontier
/// (worker bookkeeping unwound, buffers restored by the arena's unwind
/// guard), reports the failure to the scheduler (quarantine accounting),
/// and retries elsewhere — until
/// [`RuntimeConfig::max_task_retries`](crate::RuntimeConfig) is
/// exhausted, which aborts with a [`RunError`] carrying the partial
/// report.
///
/// With `max_dispatch` set, at most that many tasks are dispatched this
/// call (a *wave*); everything dispatched drains before returning, and
/// ready tasks beyond the budget stay pooled in the runtime.
///
/// Two data-movement modes, selected by
/// [`RuntimeConfig::async_transfers`](crate::RuntimeConfig):
/// the historical synchronous path performs every copy-in on the
/// coordinator before dispatch; the overlapped path (default) plans
/// transfers on the coordinator but executes the byte movement on
/// per-worker staging lanes, with a bounded lookahead so the next task's
/// inputs stage under the current kernel (DESIGN.md §2.2).
pub(crate) fn run_native(rt: &mut Runtime, max_dispatch: Option<u64>) -> Result<RunReport, RunError> {
    // Remote nodes ride the synchronous engine (ship-at-transfer-time
    // needs coordinator-ordered copies); attach_remote_node already
    // clears async_transfers, the check here is belt and braces.
    if rt.config.async_transfers && rt.remotes.is_empty() {
        run_native_async(rt, max_dispatch)
    } else {
        run_native_sync(rt, max_dispatch)
    }
}

/// The fully synchronous engine: copy-ins happen on the coordinator
/// thread, in plan order, before each dispatch. Kept byte-identical to
/// the pre-staging behaviour (same `TransferStats`, same assignment
/// order) as the fallback for `async_transfers = false`.
fn run_native_sync(rt: &mut Runtime, max_dispatch: Option<u64>) -> Result<RunReport, RunError> {
    let EngineKind::Native { cfg, arena } = &rt.engine else {
        unreachable!("run_native on a non-native runtime")
    };
    let cfg = cfg.clone();
    let arena = Arc::clone(arena);
    let plan = rt.remote_plan();
    // Template names for remote dispatch (closures don't cross the wire;
    // remote processes resolve templates by name against their own
    // registries).
    let names: Arc<HashMap<TemplateId, String>> = Arc::new(
        rt.templates
            .iter()
            .enumerate()
            .map(|(i, t)| (TemplateId(i as u32), t.name.clone()))
            .collect(),
    );
    let wall0 = Instant::now();

    let mut stats = TransferStats::default();
    let mut version_counts: HashMap<(TemplateId, VersionId), u64> = HashMap::new();
    let mut worker_counts = vec![0u64; rt.workers.len()];
    let mut worker_busy = vec![Duration::ZERO; rt.workers.len()];
    let mut worker_transfers = vec![WorkerTransferStats::default(); rt.workers.len()];
    let mut tasks_executed = 0u64;
    let budget = max_dispatch.unwrap_or(u64::MAX);
    let mut dispatched = 0u64;
    let mut failures = FailureReport::default();
    let mut attempts: HashMap<TaskId, u32> = HashMap::new();
    let mut abort: Option<(TaskId, String)> = None;
    // Nodes already declared lost — workers retired, loss event recorded.
    let mut lost_nodes: std::collections::HashSet<u16> = std::collections::HashSet::new();
    // Lost nodes whose `NodeLost` trace event is deferred until every task
    // still in flight on the node has reported back: worker threads stamp
    // `TaskStart` on their own clocks, so recording the loss at detection
    // time can predate a sibling worker's already-running start. Draining
    // first guarantees the loss stamp postdates every start on the node.
    let mut deferred_loss: Vec<u16> = Vec::new();
    let node_count = plan.node_of_worker.iter().copied().max().map_or(1, |m| m as usize + 1);

    let sink = TraceSink::from_config(&rt.config.tracing, rt.workers.len());
    let log_here = crate::tracing::begin_decision_log(rt, &sink);
    crate::tracing::record_live_created(rt, &sink, ts(wall0));

    let (done_tx, done_rx) = mpsc::channel();

    std::thread::scope(|scope| {
        // The work senders live *inside* the scope: if the coordinator
        // panics mid-run, unwinding drops them, every worker's `recv`
        // fails, the workers exit, and the scope join completes — the
        // panic propagates instead of deadlocking.
        let mut work_txs: Vec<mpsc::Sender<Msg>> = Vec::with_capacity(rt.workers.len());
        for w in rt.workers.iter() {
            let (tx, rx) = mpsc::channel();
            work_txs.push(tx);
            let done = done_tx.clone();
            let arena = Arc::clone(&arena);
            let info = w.info;
            let lanes = if info.device.shares_host_memory() { 1 } else { cfg.gpu_lanes };
            let wsink = sink.clone();
            if let Some(node) = plan.by_space.get(&info.space) {
                let node = Arc::clone(node);
                let names = Arc::clone(&names);
                scope.spawn(move || {
                    remote_worker_loop(rx, done, node, arena, info.space, info.id, names, wsink, wall0)
                });
            } else {
                scope.spawn(move || {
                    worker_loop(rx, done, arena, info.space, lanes, info.id, wsink, wall0)
                });
            }
        }
        // Workers hold the only senders now: if they all die, recv()
        // errors instead of hanging the coordinator forever.
        drop(done_tx);

        let mut in_flight = 0usize;
        let mut node_inflight = vec![0usize; node_count];

        // Assign + dispatch everything currently assignable within the
        // wave budget. Transfers are performed synchronously here
        // (coordinator order matches directory order, so sources are
        // always materialized in time). The ready pool lives in the
        // runtime so over-budget tasks carry to the next wave.
        let dispatch = |rt: &mut Runtime,
                            in_flight: &mut usize,
                            node_inflight: &mut Vec<usize>,
                            dispatched: &mut u64,
                            stats: &mut TransferStats,
                            worker_transfers: &mut Vec<WorkerTransferStats>,
                            attempts: &HashMap<TaskId, u32>| {
            let newly = rt.graph.take_newly_ready();
            if let Some(sink) = &sink {
                let lane = sink.coordinator();
                for &tid in &newly {
                    sink.record(lane, TraceEvent::TaskReady { time: ts(wall0), task: tid });
                }
            }
            rt.pending.extend(newly);
            let remaining = budget - *dispatched;
            if remaining == 0 {
                return;
            }
            if rt.config.fair_scheduling {
                rt.fair.order(&mut rt.pending, &rt.graph);
            }
            let assigned = drain_pool(
                &mut rt.pending,
                rt.scheduler.as_mut(),
                &rt.templates,
                &mut rt.workers,
                &rt.directory,
                &mut rt.graph,
                (budget != u64::MAX).then_some(remaining as usize),
                rt.config.batched_bids,
            );
            *dispatched += assigned.len() as u64;
            if rt.config.fair_scheduling {
                rt.fair.note_dispatched(&rt.graph, assigned.iter().map(|(t, _)| t));
            }
            crate::tracing::drain_decisions(rt, &sink, ts(wall0));
            for (tid, a) in assigned {
                let wi = a.worker.index();
                let space = rt.workers[wi].info.space;
                let accesses = rt.graph.node(tid).instance.accesses.clone();
                for (region, mode) in &accesses {
                    if let Some(t) = rt.directory.acquire(region.data, space, *mode) {
                        let t_start = ts(wall0);
                        let t0 = Instant::now();
                        arena.perform(&t);
                        if let Some(node) = plan.by_space.get(&t.to) {
                            // Mirror-space destination: push the bytes over
                            // the wire inside the timed window, so the
                            // elapsed time fed to `transfer_done` below is
                            // the real NIC cost and the scheduler's
                            // bandwidth EWMA learns the link. A transport
                            // error is deferred: the exec on the dead node
                            // fails with `NodeLost` and the retry machinery
                            // takes over.
                            let buf = arena.read_arc(t.data, t.to);
                            let _ = node.ship(t.data, buf.as_bytes());
                        }
                        throttle_link(cfg.link_bandwidth, t.bytes, t0.elapsed());
                        stats.record(t.kind(), t.bytes);
                        if let Some(sink) = &sink {
                            sink.record(
                                sink.coordinator(),
                                TraceEvent::Transfer {
                                    start: t_start,
                                    end: ts(wall0),
                                    data: t.data,
                                    from: t.from,
                                    to: t.to,
                                    bytes: t.bytes,
                                    by: Some(a.worker),
                                },
                            );
                        }
                        let wt = &mut worker_transfers[wi];
                        wt.staged_bytes += t.bytes;
                        wt.staged_count += 1;
                        wt.stage_time += t0.elapsed();
                        rt.scheduler.transfer_done(t.to, t.bytes, t0.elapsed());
                    }
                    if mode.writes() {
                        // Output-only accesses get no copy-in, but the
                        // kernel still needs backing memory in `space`.
                        arena.ensure(region.data, space, rt.directory.bytes(region.data) as usize);
                    }
                }
                let template = rt.graph.node(tid).instance.template;
                let kernel = if plan.by_space.contains_key(&space) {
                    // Remote worker: the kernel runs on the node; the shim
                    // ignores this placeholder.
                    Arc::new(|_: &mut KernelCtx<'_>| {}) as NativeFn
                } else {
                    rt.kernels
                        .get(&(template, a.version))
                        .unwrap_or_else(|| {
                            panic!(
                                "no native kernel bound for ({:?}, {:?})",
                                rt.templates.get(template).name,
                                a.version
                            )
                        })
                        .clone()
                };
                rt.graph.mark_running(tid);
                work_txs[a.worker.index()]
                    .send(Msg::Work(WorkItem {
                        task: tid,
                        kernel,
                        accesses,
                        version: a.version,
                        template,
                        attempt: attempts.get(&tid).copied().unwrap_or(0) + 1,
                    }))
                    .expect("worker thread died");
                *in_flight += 1;
                node_inflight[plan.node_of_worker[a.worker.index()] as usize] += 1;
            }
        };

        dispatch(rt, &mut in_flight, &mut node_inflight, &mut dispatched, &mut stats, &mut worker_transfers, &attempts);

        while !rt.graph.all_done() {
            if in_flight == 0 && dispatched >= budget {
                break; // wave budget spent, everything dispatched drained
            }
            assert!(
                in_flight > 0,
                "native engine stalled with {} live tasks and {} pooled tasks",
                rt.graph.live_tasks(),
                rt.pending.len()
            );
            let (wid, tid, outcome) = done_rx.recv().expect("all workers died");
            in_flight -= 1;
            node_inflight[plan.node_of_worker[wid.index()] as usize] -= 1;

            let q = rt.workers[wid.index()]
                .start_next()
                .expect("completion from a worker with an empty queue");
            assert_eq!(q.task, tid, "worker completions must be FIFO");
            rt.workers[wid.index()].finish(tid);

            match outcome {
                Ok(measured) => {
                    rt.graph.complete(tid, wid);
                    let assignment =
                        rt.graph.node(tid).assignment.expect("completed task was assigned");
                    rt.scheduler.task_finished(&rt.graph.node(tid).instance, assignment, measured);
                    *version_counts
                        .entry((rt.graph.node(tid).instance.template, assignment.version))
                        .or_insert(0) += 1;
                    worker_counts[wid.index()] += 1;
                    worker_busy[wid.index()] += measured;
                    worker_transfers[wid.index()].compute_time += measured;
                    tasks_executed += 1;
                }
                Err(fail) => {
                    let assignment =
                        rt.graph.node(tid).assignment.expect("failed task was assigned");
                    let attempt = {
                        let n = attempts.entry(tid).or_insert(0);
                        *n += 1;
                        *n
                    };
                    failures.events.push(TaskFailure {
                        task: tid,
                        template: rt.graph.node(tid).instance.template,
                        version: assignment.version,
                        worker: wid,
                        kind: fail.kind,
                        message: fail.message.clone(),
                        attempt,
                    });
                    rt.scheduler.task_failed(
                        &rt.graph.node(tid).instance,
                        assignment,
                        fail.kind,
                    );
                    if fail.kind == FailureKind::NodeLost {
                        // Charge the node, not the version: retire every
                        // worker the lost node hosted so the scheduler
                        // stops placing work there, record the loss once,
                        // and requeue unconditionally — node loss never
                        // burns the task's retry budget.
                        let node = plan.node_of_worker[wid.index()];
                        if lost_nodes.insert(node) {
                            for (i, w) in rt.workers.iter_mut().enumerate() {
                                if plan.node_of_worker[i] == node {
                                    w.retire();
                                }
                            }
                            // Recorded once the node's in-flight tasks have
                            // drained back (see `deferred_loss`), so the
                            // loss stamp postdates every start on the node.
                            deferred_loss.push(node);
                        }
                    } else if attempt > rt.config.max_task_retries {
                        abort = Some((tid, fail.message));
                        break;
                    }
                    rt.graph.requeue(tid);
                    failures.retries += 1;
                }
            }

            deferred_loss.retain(|&node| {
                if node_inflight[node as usize] > 0 {
                    return true;
                }
                if let Some(sink) = &sink {
                    sink.record(sink.coordinator(), TraceEvent::NodeLost { time: ts(wall0), node });
                }
                false
            });

            dispatch(rt, &mut in_flight, &mut node_inflight, &mut dispatched, &mut stats, &mut worker_transfers, &attempts);
        }

        for tx in &work_txs {
            let _ = tx.send(Msg::Stop);
        }
    });

    // An abort or spent wave budget can leave a loss deferred; the worker
    // threads have joined by now, so a stamp taken here postdates every
    // start they recorded.
    if let Some(sink) = &sink {
        for node in deferred_loss.drain(..) {
            sink.record(sink.coordinator(), TraceEvent::NodeLost { time: ts(wall0), node });
        }
    }

    // An aborted run skips the flush (the graph still has live tasks and
    // the caller gets the partial report through the error); a partial
    // wave skips it too, leaving data in place for the next wave.
    if abort.is_none() && rt.config.flush_on_wait && rt.graph.all_done() {
        for t in rt.directory.flush_all_to_host() {
            let t_start = ts(wall0);
            let t0 = Instant::now();
            arena.perform(&t);
            throttle_link(cfg.link_bandwidth, t.bytes, t0.elapsed());
            stats.record(t.kind(), t.bytes);
            if let Some(sink) = &sink {
                sink.record(
                    sink.coordinator(),
                    TraceEvent::Transfer {
                        start: t_start,
                        end: ts(wall0),
                        data: t.data,
                        from: t.from,
                        to: t.to,
                        bytes: t.bytes,
                        by: None,
                    },
                );
            }
            rt.scheduler.transfer_done(t.to, t.bytes, t0.elapsed());
        }
    }

    crate::tracing::end_decision_log(rt, log_here);
    failures.quarantined = rt.quarantined_versions();
    let report = RunReport {
        scheduler: rt.scheduler.name().to_string(),
        makespan: wall0.elapsed(),
        tasks_executed,
        transfers: stats,
        version_counts,
        worker_task_counts: worker_counts,
        worker_busy,
        worker_transfers,
        completed: rt.graph.all_done(),
        profile_table: rt
            .scheduler
            .as_versioning()
            .map(|v| v.profiles().render_table(&rt.templates)),
        trace: sink.map(|s| s.drain(crate::tracing::trace_meta(rt, "native"))),
        failures,
    };
    match abort {
        Some((task, message)) => {
            Err(RunError { task, kind: FailureKind::Panic, message, report: Box::new(report) })
        }
        None => Ok(report),
    }
}

// ---------------------------------------------------------------------------
// Overlapped transfer pipeline (async_transfers = true)
// ---------------------------------------------------------------------------
//
// Per worker, two pipeline threads replace the single worker thread:
//
//   coordinator ──plan──▶ outbox ──▶ stager ──▶ exec ──done──▶ coordinator
//
// The coordinator still performs every directory transition (acquire,
// snapshot, rollback) single-threaded, in plan order — decisions stay
// deterministic. What moves off the coordinator is the byte movement:
// each planned task becomes a `StagedItem` whose `StageOp`s the worker's
// *stager* thread executes (waiting on in-flight sources via the
// `StagingLedger`'s `ReadyCell`s), after which the item flows to the
// *exec* thread that runs the kernel. At most `lookahead_depth + 1`
// items occupy a worker's pipeline, so the next task's inputs stage
// while the current kernel computes.

/// One step of a staged item's pre-kernel pipeline, planned by the
/// coordinator, executed by the destination worker's stager.
enum StageOp {
    /// Move bytes: wait for the source copy if it is itself in flight,
    /// perform the transfer, publish the destination cell.
    Copy {
        t: Transfer,
        wait_src: Option<Arc<ReadyCell>>,
        publish: Arc<ReadyCell>,
        /// Test hook: panic instead of copying (see
        /// [`Runtime::inject_stage_fault`]).
        inject_fault: bool,
    },
    /// The datum is already directory-valid in this space, but its bytes
    /// may still be in flight from an earlier concurrent reader's staged
    /// copy — wait for that copy to land.
    WaitLocal(Arc<ReadyCell>),
    /// Allocate zeroed backing for an output-only access.
    Ensure { data: DataId, len: usize },
}

/// A planned task travelling through one worker's staging pipeline.
struct StagedItem {
    task: TaskId,
    kernel: NativeFn,
    accesses: Vec<(Region, AccessMode)>,
    ops: Vec<StageOp>,
    /// Trace identity of this execution attempt (see [`WorkItem`]).
    version: VersionId,
    template: TemplateId,
    attempt: u32,
}

/// If an item is dropped without being staged (coordinator unwound with
/// the item still in an outbox), its publish cells must resolve — a
/// stager on another worker may be blocked waiting on one.
impl Drop for StagedItem {
    fn drop(&mut self) {
        for op in &self.ops {
            if let StageOp::Copy { publish, .. } = op {
                publish.publish_failed_if_pending("staged item dropped before execution");
            }
        }
    }
}

enum StageMsg {
    Work(StagedItem),
    Stop,
}

enum ExecMsg {
    Run {
        task: TaskId,
        kernel: NativeFn,
        accesses: Vec<(Region, AccessMode)>,
        /// Total staging time, ns.
        stage_ns: u64,
        /// Per-copy `(start, end)` offsets from the run's epoch, ns.
        stage_spans: Vec<(u64, u64)>,
        /// Per-copy `(bytes, ns)` bandwidth samples.
        samples: Vec<(u64, u64)>,
        /// Trace identity of this execution attempt (see [`WorkItem`]).
        version: VersionId,
        template: TemplateId,
        attempt: u32,
    },
    Failed {
        task: TaskId,
        msg: String,
        /// True when this task did not fail itself but observed another
        /// task's staging failure (its copy source, or a local cell) —
        /// it is requeued without charging a retry.
        upstream: bool,
    },
    Stop,
}

/// What the exec thread reports back to the coordinator per task.
enum Outcome {
    Done {
        kernel: Duration,
        /// Kernel `(start, end)` offsets from the run's epoch, ns.
        kernel_span: (u64, u64),
        stage_ns: u64,
        stage_spans: Vec<(u64, u64)>,
        samples: Vec<(u64, u64)>,
    },
    Panicked(String),
    StageFailed { msg: String, upstream: bool },
}

/// Undo record for one task's optimistic directory updates, applied in
/// reverse push order when its staging fails.
enum Rollback {
    /// Undo a read copy-in. Commutative across concurrently failing
    /// readers (each only removes its own destination space).
    Retract(DataId, MemSpace),
    /// Undo a write acquire with an exact pre-acquire snapshot. Exact
    /// restore is safe because the graph serializes every writer against
    /// all other accessors of the datum — no concurrent planner can have
    /// touched the entry in between.
    Restore(DataId, HandleState),
}

/// The staging lane of one worker: executes `StageOp`s in plan order,
/// then forwards the item to the exec thread (or a failure notice, so
/// per-worker completion order stays FIFO).
#[allow(clippy::too_many_arguments)]
fn stager_loop(
    rx: mpsc::Receiver<StageMsg>,
    tx: mpsc::Sender<ExecMsg>,
    arena: Arc<Arena>,
    space: MemSpace,
    link_bandwidth: Option<u64>,
    wall0: Instant,
    wid: WorkerId,
    sink: Option<Arc<TraceSink>>,
) {
    // Every planned `Copy` gets exactly one Transfer event — a real span
    // on success, a truncated (or empty) span when the copy faults or is
    // abandoned — so traced bytes reconcile with plan-time TransferStats.
    let record_copy = |t: &Transfer, start: Ts, end: Ts| {
        if let Some(sink) = &sink {
            sink.record(
                wid.index(),
                TraceEvent::Transfer {
                    start,
                    end,
                    data: t.data,
                    from: t.from,
                    to: t.to,
                    bytes: t.bytes,
                    by: Some(wid),
                },
            );
        }
    };
    while let Ok(StageMsg::Work(mut item)) = rx.recv() {
        let task = item.task;
        let kernel = item.kernel.clone();
        let accesses = std::mem::take(&mut item.accesses);
        let (version, template, attempt) = (item.version, item.template, item.attempt);
        // Taking the ops out disarms StagedItem's drop guard; from here
        // every cell is resolved explicitly.
        let mut ops = std::mem::take(&mut item.ops).into_iter();
        drop(item);

        let mut stage_ns = 0u64;
        let mut stage_spans: Vec<(u64, u64)> = Vec::new();
        let mut samples: Vec<(u64, u64)> = Vec::new();
        let mut failure: Option<(String, bool)> = None;
        for op in ops.by_ref() {
            match op {
                StageOp::WaitLocal(cell) => {
                    if let Err(msg) = cell.wait() {
                        failure = Some((format!("upstream staging failed: {msg}"), true));
                        break;
                    }
                }
                StageOp::Ensure { data, len } => arena.ensure(data, space, len),
                StageOp::Copy { t, wait_src, publish, inject_fault } => {
                    debug_assert_eq!(t.to, space, "copy planned onto the wrong lane");
                    if let Some(src) = wait_src {
                        if let Err(msg) = src.wait() {
                            let msg = format!("upstream staging failed: {msg}");
                            publish.publish_failed(msg.clone());
                            let now = ts(wall0);
                            record_copy(&t, now, now);
                            failure = Some((msg, true));
                            break;
                        }
                    }
                    let start = wall0.elapsed();
                    let moved = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        if inject_fault {
                            panic!("injected staging fault for {:?}", t.data);
                        }
                        arena.perform(&t);
                    }));
                    match moved {
                        Ok(()) => {
                            throttle_link(link_bandwidth, t.bytes, wall0.elapsed() - start);
                            let end = wall0.elapsed();
                            let took = end - start;
                            stage_ns += took.as_nanos() as u64;
                            stage_spans.push((start.as_nanos() as u64, end.as_nanos() as u64));
                            samples.push((t.bytes, took.as_nanos() as u64));
                            record_copy(
                                &t,
                                Ts(start.as_nanos() as u64),
                                Ts(end.as_nanos() as u64),
                            );
                            publish.publish_ok();
                        }
                        Err(payload) => {
                            let msg = panic_message(payload);
                            publish.publish_failed(msg.clone());
                            record_copy(&t, Ts(start.as_nanos() as u64), ts(wall0));
                            failure = Some((msg, false));
                            break;
                        }
                    }
                }
            }
        }
        let sent = match failure {
            Some((msg, upstream)) => {
                // Poison the copies this item never attempted, so
                // cross-worker waiters observe failure instead of
                // hanging; the coordinator rolls all of them back.
                for op in ops {
                    if let StageOp::Copy { t, publish, .. } = &op {
                        publish.publish_failed("abandoned after earlier staging failure");
                        let now = ts(wall0);
                        record_copy(t, now, now);
                    }
                }
                tx.send(ExecMsg::Failed { task, msg, upstream })
            }
            None => tx.send(ExecMsg::Run {
                task,
                kernel,
                accesses,
                stage_ns,
                stage_spans,
                samples,
                version,
                template,
                attempt,
            }),
        };
        if sent.is_err() {
            return; // exec thread gone: coordinator is unwinding
        }
    }
    let _ = tx.send(ExecMsg::Stop);
}

/// The exec thread of one worker: runs kernels against fully staged
/// data, forwards staging failures unchanged (keeping completion order
/// FIFO), reports outcomes with wall-clock spans for overlap accounting.
#[allow(clippy::too_many_arguments)]
fn exec_loop(
    rx: mpsc::Receiver<ExecMsg>,
    done: mpsc::Sender<(WorkerId, TaskId, Outcome)>,
    arena: Arc<Arena>,
    space: MemSpace,
    lanes: usize,
    wid: WorkerId,
    wall0: Instant,
    sink: Option<Arc<TraceSink>>,
) {
    let pool = (lanes > 1).then(|| LanePool::new(lanes));
    let exec: &dyn LaneExec = match &pool {
        Some(pool) => pool,
        None => &SerialExec,
    };
    while let Ok(msg) = rx.recv() {
        let (task, outcome) = match msg {
            ExecMsg::Stop => break,
            ExecMsg::Failed { task, msg, upstream } => {
                (task, Outcome::StageFailed { msg, upstream })
            }
            ExecMsg::Run {
                task,
                kernel,
                accesses,
                stage_ns,
                stage_spans,
                samples,
                version,
                template,
                attempt,
            } => {
                let start = wall0.elapsed();
                if let Some(sink) = &sink {
                    sink.record(
                        wid.index(),
                        TraceEvent::TaskStart {
                            time: Ts(start.as_nanos() as u64),
                            task,
                            worker: wid,
                            version,
                            template,
                            attempt,
                        },
                    );
                }
                let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    execute_item(
                        WorkItem { task, kernel, accesses, version, template, attempt },
                        &arena,
                        space,
                        exec,
                    )
                }));
                let end = wall0.elapsed();
                if let Some(sink) = &sink {
                    let time = Ts(end.as_nanos() as u64);
                    let ev = match &res {
                        Ok(kernel) => TraceEvent::TaskEnd {
                            time,
                            task,
                            worker: wid,
                            kernel_ns: kernel.as_nanos() as u64,
                        },
                        Err(_) => {
                            TraceEvent::TaskFailed { time, task, worker: wid, version, attempt }
                        }
                    };
                    sink.record(wid.index(), ev);
                }
                let outcome = match res {
                    Ok(kernel) => Outcome::Done {
                        kernel,
                        kernel_span: (start.as_nanos() as u64, end.as_nanos() as u64),
                        stage_ns,
                        stage_spans,
                        samples,
                    },
                    Err(payload) => Outcome::Panicked(panic_message(payload)),
                };
                (task, outcome)
            }
        };
        done.send((wid, task, outcome)).expect("coordinator hung up");
    }
}

/// Nanoseconds of `stage` spans that intersect any `kernel` span —
/// staging time hidden under compute. Kernel spans are merged first;
/// stage spans never overlap each other (one sequential stager).
fn overlap_ns(kernel: &mut [(u64, u64)], stage: &[(u64, u64)]) -> u64 {
    kernel.sort_unstable();
    let mut merged: Vec<(u64, u64)> = Vec::with_capacity(kernel.len());
    for &(s, e) in kernel.iter() {
        match merged.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => merged.push((s, e)),
        }
    }
    let mut total = 0u64;
    for &(s, e) in stage {
        // First merged kernel interval that ends after this stage span
        // starts; walk forward while intervals still intersect it.
        let mut i = merged.partition_point(|&(_, ke)| ke <= s);
        while i < merged.len() && merged[i].0 < e {
            total += e.min(merged[i].1) - s.max(merged[i].0);
            i += 1;
        }
    }
    total
}

/// The overlapped engine: coordinator-planned, worker-staged transfers
/// with bounded per-worker lookahead. See the module comment above and
/// DESIGN.md §2.2 for the protocol and its invariants.
fn run_native_async(rt: &mut Runtime, max_dispatch: Option<u64>) -> Result<RunReport, RunError> {
    let EngineKind::Native { cfg, arena } = &rt.engine else {
        unreachable!("run_native on a non-native runtime")
    };
    let cfg = cfg.clone();
    let arena = Arc::clone(arena);
    let wall0 = Instant::now();
    let n_workers = rt.workers.len();
    // The running task plus `lookahead_depth` staging successors.
    let inflight_cap = rt.config.lookahead_depth + 1;

    let mut stats = TransferStats::default();
    let mut version_counts: HashMap<(TemplateId, VersionId), u64> = HashMap::new();
    let mut worker_counts = vec![0u64; n_workers];
    let mut worker_busy = vec![Duration::ZERO; n_workers];
    let mut worker_transfers = vec![WorkerTransferStats::default(); n_workers];
    let mut kernel_spans: Vec<Vec<(u64, u64)>> = vec![Vec::new(); n_workers];
    let mut stage_spans: Vec<Vec<(u64, u64)>> = vec![Vec::new(); n_workers];
    let mut tasks_executed = 0u64;
    let budget = max_dispatch.unwrap_or(u64::MAX);
    let mut dispatched = 0u64;
    let mut failures = FailureReport::default();
    let mut attempts: HashMap<TaskId, u32> = HashMap::new();
    let mut abort: Option<(TaskId, String)> = None;
    let mut ledger = StagingLedger::new();
    let mut rollbacks: HashMap<TaskId, Vec<Rollback>> = HashMap::new();

    let sink = TraceSink::from_config(&rt.config.tracing, n_workers);
    let log_here = crate::tracing::begin_decision_log(rt, &sink);
    crate::tracing::record_live_created(rt, &sink, ts(wall0));

    let (done_tx, done_rx) = mpsc::channel();

    std::thread::scope(|scope| {
        // As in the sync engine, every sender lives inside the scope so
        // a coordinator panic unwinds cleanly: dropping the outboxes
        // resolves their cells (StagedItem's drop guard), dropping
        // `stage_txs` stops the stagers, which drop their exec senders,
        // which stops the exec threads.
        let mut stage_txs: Vec<mpsc::Sender<StageMsg>> = Vec::with_capacity(n_workers);
        for w in rt.workers.iter() {
            let (stage_tx, stage_rx) = mpsc::channel();
            let (exec_tx, exec_rx) = mpsc::channel();
            stage_txs.push(stage_tx);
            let info = w.info;
            let lanes = if info.device.shares_host_memory() { 1 } else { cfg.gpu_lanes };
            let done = done_tx.clone();
            let stager_arena = Arc::clone(&arena);
            let exec_arena = Arc::clone(&arena);
            let link = cfg.link_bandwidth;
            let stager_sink = sink.clone();
            let exec_sink = sink.clone();
            scope.spawn(move || {
                stager_loop(stage_rx, exec_tx, stager_arena, info.space, link, wall0, info.id, stager_sink)
            });
            scope.spawn(move || {
                exec_loop(exec_rx, done, exec_arena, info.space, lanes, info.id, wall0, exec_sink)
            });
        }
        drop(done_tx);

        // Planned items not yet admitted to a lane, and the number
        // admitted and not yet completed (bounded by `inflight_cap`).
        let mut outbox: Vec<VecDeque<StagedItem>> =
            (0..n_workers).map(|_| VecDeque::new()).collect();
        let mut lane_busy = vec![0usize; n_workers];
        let mut in_flight = 0usize;

        // Plan everything currently assignable within the wave budget:
        // run the scheduler, perform directory transitions, record the
        // rollback ledger, and queue `StagedItem`s — no byte movement.
        let plan = |rt: &mut Runtime,
                    in_flight: &mut usize,
                    dispatched: &mut u64,
                    stats: &mut TransferStats,
                    worker_transfers: &mut Vec<WorkerTransferStats>,
                    ledger: &mut StagingLedger,
                    rollbacks: &mut HashMap<TaskId, Vec<Rollback>>,
                    outbox: &mut Vec<VecDeque<StagedItem>>,
                    attempts: &HashMap<TaskId, u32>| {
            let newly = rt.graph.take_newly_ready();
            if let Some(sink) = &sink {
                let lane = sink.coordinator();
                for &tid in &newly {
                    sink.record(lane, TraceEvent::TaskReady { time: ts(wall0), task: tid });
                }
            }
            rt.pending.extend(newly);
            let remaining = budget - *dispatched;
            if remaining == 0 {
                return;
            }
            if rt.config.fair_scheduling {
                rt.fair.order(&mut rt.pending, &rt.graph);
            }
            let assigned = drain_pool(
                &mut rt.pending,
                rt.scheduler.as_mut(),
                &rt.templates,
                &mut rt.workers,
                &rt.directory,
                &mut rt.graph,
                (budget != u64::MAX).then_some(remaining as usize),
                rt.config.batched_bids,
            );
            *dispatched += assigned.len() as u64;
            if rt.config.fair_scheduling {
                rt.fair.note_dispatched(&rt.graph, assigned.iter().map(|(t, _)| t));
            }
            crate::tracing::drain_decisions(rt, &sink, ts(wall0));
            for (tid, a) in assigned {
                let wi = a.worker.index();
                let space = rt.workers[wi].info.space;
                let accesses = rt.graph.node(tid).instance.accesses.clone();
                let mut ops: Vec<StageOp> = Vec::new();
                let mut rb: Vec<Rollback> = Vec::new();
                for (region, mode) in &accesses {
                    let data = region.data;
                    if mode.writes() {
                        if let Some(snap) = rt.directory.snapshot(data) {
                            rb.push(Rollback::Restore(data, snap));
                        }
                    }
                    if let Some(t) = rt.directory.acquire(data, space, *mode) {
                        if !mode.writes() {
                            // A pure read copy-in rolls back by
                            // retraction; a write's snapshot (above)
                            // already covers its transfer.
                            rb.push(Rollback::Retract(data, space));
                        }
                        let (wait_src, publish) = ledger.plan_copy(&t);
                        let inject_fault = rt.take_stage_fault(data);
                        // Counted at plan time, in plan order — exactly
                        // where the sync path records them, so fault-free
                        // runs produce identical TransferStats.
                        stats.record(t.kind(), t.bytes);
                        let wt = &mut worker_transfers[wi];
                        wt.staged_bytes += t.bytes;
                        wt.staged_count += 1;
                        ops.push(StageOp::Copy { t, wait_src, publish, inject_fault });
                    } else if mode.reads() {
                        if let Some(cell) = ledger.pending(data, space) {
                            ops.push(StageOp::WaitLocal(cell));
                        }
                    }
                    if mode.writes() {
                        // Plan-order invariant: a writer's datum has no
                        // pending cells (the graph serialized all prior
                        // accessors); drop stale failed cells so they
                        // stop gating future readers.
                        ledger.note_write(data);
                        ops.push(StageOp::Ensure {
                            data,
                            len: rt.directory.bytes(data) as usize,
                        });
                    }
                }
                rollbacks.insert(tid, rb);
                let template = rt.graph.node(tid).instance.template;
                let kernel = rt
                    .kernels
                    .get(&(template, a.version))
                    .unwrap_or_else(|| {
                        panic!(
                            "no native kernel bound for ({:?}, {:?})",
                            rt.templates.get(template).name,
                            a.version
                        )
                    })
                    .clone();
                rt.graph.mark_running(tid);
                outbox[wi].push_back(StagedItem {
                    task: tid,
                    kernel,
                    accesses,
                    ops,
                    version: a.version,
                    template,
                    attempt: attempts.get(&tid).copied().unwrap_or(0) + 1,
                });
                *in_flight += 1;
            }
        };

        // Admit queued items to each lane up to the lookahead cap.
        let pump = |outbox: &mut Vec<VecDeque<StagedItem>>, lane_busy: &mut Vec<usize>| {
            for wi in 0..n_workers {
                while lane_busy[wi] < inflight_cap {
                    let Some(item) = outbox[wi].pop_front() else { break };
                    stage_txs[wi].send(StageMsg::Work(item)).expect("staging lane died");
                    lane_busy[wi] += 1;
                }
            }
        };

        plan(
            rt,
            &mut in_flight,
            &mut dispatched,
            &mut stats,
            &mut worker_transfers,
            &mut ledger,
            &mut rollbacks,
            &mut outbox,
            &attempts,
        );
        pump(&mut outbox, &mut lane_busy);

        while !rt.graph.all_done() {
            if in_flight == 0 && dispatched >= budget {
                break; // wave budget spent, everything dispatched drained
            }
            assert!(
                in_flight > 0,
                "native engine stalled with {} live tasks and {} pooled tasks",
                rt.graph.live_tasks(),
                rt.pending.len()
            );
            let (wid, tid, outcome) = done_rx.recv().expect("all workers died");
            in_flight -= 1;
            let wi = wid.index();
            lane_busy[wi] -= 1;

            let q = rt.workers[wi]
                .start_next()
                .expect("completion from a worker with an empty queue");
            assert_eq!(q.task, tid, "worker completions must be FIFO");
            rt.workers[wi].finish(tid);

            match outcome {
                Outcome::Done { kernel, kernel_span, stage_ns, stage_spans: spans, samples } => {
                    rollbacks.remove(&tid);
                    rt.graph.complete(tid, wid);
                    let assignment =
                        rt.graph.node(tid).assignment.expect("completed task was assigned");
                    rt.scheduler.task_finished(&rt.graph.node(tid).instance, assignment, kernel);
                    let space = rt.workers[wi].info.space;
                    for (bytes, ns) in samples {
                        rt.scheduler.transfer_done(space, bytes, Duration::from_nanos(ns));
                    }
                    *version_counts
                        .entry((rt.graph.node(tid).instance.template, assignment.version))
                        .or_insert(0) += 1;
                    worker_counts[wi] += 1;
                    worker_busy[wi] += kernel;
                    let wt = &mut worker_transfers[wi];
                    wt.compute_time += kernel;
                    wt.stage_time += Duration::from_nanos(stage_ns);
                    kernel_spans[wi].push(kernel_span);
                    stage_spans[wi].extend(spans);
                    tasks_executed += 1;
                }
                Outcome::Panicked(msg) => {
                    // Kernel panic: staging succeeded, so the directory's
                    // optimistic state is real — no rollback, same
                    // accounting as the sync engine.
                    rollbacks.remove(&tid);
                    let assignment =
                        rt.graph.node(tid).assignment.expect("failed task was assigned");
                    let attempt = {
                        let n = attempts.entry(tid).or_insert(0);
                        *n += 1;
                        *n
                    };
                    failures.events.push(TaskFailure {
                        task: tid,
                        template: rt.graph.node(tid).instance.template,
                        version: assignment.version,
                        worker: wid,
                        kind: FailureKind::Panic,
                        message: msg.clone(),
                        attempt,
                    });
                    rt.scheduler.task_failed(
                        &rt.graph.node(tid).instance,
                        assignment,
                        FailureKind::Panic,
                    );
                    if attempt > rt.config.max_task_retries {
                        abort = Some((tid, msg));
                        break;
                    }
                    rt.graph.requeue(tid);
                    failures.retries += 1;
                }
                Outcome::StageFailed { msg, upstream } => {
                    // The kernel never ran: undo this task's optimistic
                    // directory updates (LIFO, so a same-task read
                    // copy-in preceding a write acquire of the same
                    // datum unwinds correctly), then requeue.
                    if let Some(rb) = rollbacks.remove(&tid) {
                        for op in rb.into_iter().rev() {
                            match op {
                                Rollback::Retract(d, s) => rt.directory.retract(d, s),
                                Rollback::Restore(d, st) => rt.directory.restore(d, st),
                            }
                        }
                    }
                    if upstream {
                        // Collateral of another task's staging failure:
                        // replan without charging this task an attempt —
                        // the origin task's retry budget bounds the
                        // cascade.
                        rt.graph.requeue(tid);
                    } else {
                        let assignment =
                            rt.graph.node(tid).assignment.expect("failed task was assigned");
                        let attempt = {
                            let n = attempts.entry(tid).or_insert(0);
                            *n += 1;
                            *n
                        };
                        // A staging failure never reached the exec thread,
                        // so no TaskStart exists — record the terminal
                        // event here (Failed-without-Start is legal).
                        // Upstream requeues charge no attempt and are
                        // deliberately not recorded.
                        if let Some(sink) = &sink {
                            sink.record(
                                sink.coordinator(),
                                TraceEvent::TaskFailed {
                                    time: ts(wall0),
                                    task: tid,
                                    worker: wid,
                                    version: assignment.version,
                                    attempt,
                                },
                            );
                        }
                        failures.events.push(TaskFailure {
                            task: tid,
                            template: rt.graph.node(tid).instance.template,
                            version: assignment.version,
                            worker: wid,
                            kind: FailureKind::Panic,
                            message: msg.clone(),
                            attempt,
                        });
                        rt.scheduler.task_failed(
                            &rt.graph.node(tid).instance,
                            assignment,
                            FailureKind::Panic,
                        );
                        if attempt > rt.config.max_task_retries {
                            abort = Some((tid, msg));
                            break;
                        }
                        rt.graph.requeue(tid);
                        failures.retries += 1;
                    }
                }
            }

            ledger.prune();
            plan(
                rt,
                &mut in_flight,
                &mut dispatched,
                &mut stats,
                &mut worker_transfers,
                &mut ledger,
                &mut rollbacks,
                &mut outbox,
                &attempts,
            );
            pump(&mut outbox, &mut lane_busy);
        }

        // Flush every outbox before stopping (reached on abort, or when
        // a wave budget leaves planned items unadmitted): a queued item
        // may hold the publish cell a blocked stager is waiting on.
        for (wi, q) in outbox.iter_mut().enumerate() {
            while let Some(item) = q.pop_front() {
                if stage_txs[wi].send(StageMsg::Work(item)).is_err() {
                    break;
                }
            }
        }
        for tx in &stage_txs {
            let _ = tx.send(StageMsg::Stop);
        }
    });

    if abort.is_none() && rt.config.flush_on_wait && rt.graph.all_done() {
        for t in rt.directory.flush_all_to_host() {
            let t_start = ts(wall0);
            let t0 = Instant::now();
            arena.perform(&t);
            throttle_link(cfg.link_bandwidth, t.bytes, t0.elapsed());
            stats.record(t.kind(), t.bytes);
            if let Some(sink) = &sink {
                sink.record(
                    sink.coordinator(),
                    TraceEvent::Transfer {
                        start: t_start,
                        end: ts(wall0),
                        data: t.data,
                        from: t.from,
                        to: t.to,
                        bytes: t.bytes,
                        by: None,
                    },
                );
            }
            rt.scheduler.transfer_done(t.to, t.bytes, t0.elapsed());
        }
    }

    for wi in 0..n_workers {
        worker_transfers[wi].overlap_time =
            Duration::from_nanos(overlap_ns(&mut kernel_spans[wi], &stage_spans[wi]));
    }

    crate::tracing::end_decision_log(rt, log_here);
    failures.quarantined = rt.quarantined_versions();
    let report = RunReport {
        scheduler: rt.scheduler.name().to_string(),
        makespan: wall0.elapsed(),
        tasks_executed,
        transfers: stats,
        version_counts,
        worker_task_counts: worker_counts,
        worker_busy,
        worker_transfers,
        completed: rt.graph.all_done(),
        profile_table: rt
            .scheduler
            .as_versioning()
            .map(|v| v.profiles().render_table(&rt.templates)),
        trace: sink.map(|s| s.drain(crate::tracing::trace_meta(rt, "native"))),
        failures,
    };
    match abort {
        Some((task, message)) => {
            Err(RunError { task, kind: FailureKind::Panic, message, report: Box::new(report) })
        }
        None => Ok(report),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn native_config_validation() {
        assert!(NativeConfig::new(2, 1).validate().is_ok());
        assert!(NativeConfig { smp_workers: 0, gpus: 0, ..NativeConfig::new(0, 0) }
            .validate()
            .is_err());
        assert!(NativeConfig { gpu_lanes: 0, ..NativeConfig::new(1, 1) }.validate().is_err());
        assert!(NativeConfig { gpu_lanes: 2, ..NativeConfig::new(0, 1) }.validate().is_ok());
        assert!(NativeConfig { link_bandwidth: Some(0), ..NativeConfig::new(1, 0) }
            .validate()
            .is_err());
        assert!(NativeConfig { link_bandwidth: Some(1 << 30), ..NativeConfig::new(1, 1) }
            .validate()
            .is_ok());
    }

    #[test]
    fn default_config_is_small_but_valid() {
        let c = NativeConfig::default();
        assert!(c.validate().is_ok());
        assert_eq!(c.gpu_lanes, 4);
    }

    #[test]
    fn oversubscription_warns_but_validates() {
        let c = NativeConfig { gpu_lanes: 100_000, ..NativeConfig::new(1, 1) };
        assert!(c.validate().is_ok());
        assert!(!c.warnings().is_empty());
        // No GPUs → lane count is irrelevant, no warning either.
        let smp_only = NativeConfig { gpu_lanes: 100_000, ..NativeConfig::new(2, 0) };
        assert!(smp_only.warnings().is_empty());
    }

    #[test]
    fn ctx_split_borrow_and_par_bands() {
        let mut bufs = vec![AlignedBuf::zeroed(4 * 8)];
        let shared = Arc::new(AlignedBuf::from_bytes(&7.0f64.to_ne_bytes()));
        let slots = vec![
            Slot::Owned { buf: 0, range: 0..32, writable: true },
            Slot::Shared(shared, 0..8),
        ];
        let mut ctx = KernelCtx { bufs: &mut bufs, slots, exec: &SerialExec };
        assert_eq!(ctx.lanes(), 1);
        assert_eq!(ctx.arg_count(), 2);
        let (reads, out) = ctx.f64_reads_and_mut(&[1], 0);
        assert_eq!(reads[0], &[7.0]);
        out.fill(3.0);
        assert_eq!(ctx.f64(0), &[3.0; 4]);

        let sum = std::sync::Mutex::new(0usize);
        ctx.par_bands(10, |band| {
            *sum.lock().unwrap() += band.len();
        });
        assert_eq!(*sum.lock().unwrap(), 10);
    }

    #[test]
    #[should_panic(expected = "aliases written argument")]
    fn split_borrow_rejects_aliasing() {
        let mut bufs = vec![AlignedBuf::zeroed(16)];
        let slots = vec![
            Slot::Owned { buf: 0, range: 0..16, writable: true },
            Slot::Owned { buf: 0, range: 0..8, writable: false },
        ];
        let mut ctx = KernelCtx { bufs: &mut bufs, slots, exec: &SerialExec };
        let _ = ctx.f64_reads_and_mut(&[1], 0);
    }
}
