//! # versa-runtime — the OmpSs-like task runtime
//!
//! This crate ties the workspace together into the runtime the paper
//! extends (§III–IV):
//!
//! * **Dependence analysis** ([`graph`]): `input`/`output`/`inout`
//!   accesses over byte regions build the task graph (flow, anti and
//!   output dependences), exactly as the StarSs dependence support does.
//! * **Scheduling**: ready tasks flow through the configured policy
//!   (`versa-core` schedulers) into per-worker FIFO queues, with the
//!   learning-phase pull throttling described in the paper's §IV-B.
//! * **Two engines** behind one API:
//!   [`Runtime::simulated`] executes in virtual time on the `versa-sim`
//!   platform (this is what reproduces the paper's figures without
//!   GPUs); [`Runtime::native`] executes for real on OS threads with
//!   per-device arenas and emulated multi-lane accelerators (this is what
//!   proves the runtime computes correct results end-to-end).
//! * **Reports** ([`RunReport`]): makespan, per-category transfer bytes,
//!   per-version execution counts — the paper's measured quantities.

#![warn(missing_docs)]

mod assign;
mod config;
mod fair;
pub mod graph;
pub mod lanepool;
mod native;
pub mod remote;
mod report;
mod runtime;
mod sim_engine;
mod tracing;

pub use config::RuntimeConfig;
pub use graph::{TaskGraph, TaskNode, TaskState};
pub use lanepool::LanePool;
pub use native::{KernelCtx, NativeConfig};
pub use remote::{RemoteAccess, RemoteCaps, RemoteDone, RemoteError, RemoteExec, RemoteNode};
pub use report::{
    FailureReport, QuarantinedVersion, RunError, RunReport, TaskFailure, WorkerTransferStats,
};
pub use runtime::{DetachedExecutor, FreeError, NativeFn, Runtime, TaskSubmitter};
