//! The assignment pump shared by both execution engines.
//!
//! Ready tasks are either pushed eagerly onto a worker's queue
//! (look-ahead assignment, used by the baselines and by the versioning
//! scheduler's reliable phase) or held in a central pool and handed out
//! one at a time as workers run dry (the versioning scheduler's learning
//! phase — see [`Scheduler::eager`]).

use crate::graph::TaskGraph;
use std::collections::VecDeque;
use versa_core::{Assignment, SchedCtx, Scheduler, TaskId, TemplateRegistry, WorkerState};
use versa_mem::Directory;

/// Move as many pooled ready tasks as possible onto worker queues.
///
/// A task is assigned when its scheduler wants eager placement, or when at
/// least one *idle* worker can run some version of it (pull-style
/// distribution during the learning phase). Returns the assignments made,
/// in order; tasks that could not be placed stay pooled for the next call
/// (triggered by the next completion, which frees a worker).
///
/// `limit` caps how many assignments this call may make (`None` =
/// unlimited) — the dispatch budget behind bounded waves.
///
/// With `batched` set, the whole call is bracketed in one
/// [`Scheduler::begin_wave`]/`end_wave` pair over the pooled frontier,
/// so the scheduler computes its wave-invariant decision inputs once
/// per wave instead of once per `eager`/`assign` probe. The bracket is
/// sound because nothing completes inside this function: `task_finished`
/// / `task_failed` / `transfer_done` only fire between drains.
// The argument list mirrors the engine state split borrow-by-borrow;
// bundling it into a struct would just move the same eight borrows one
// level up at every call site.
#[allow(clippy::too_many_arguments)]
pub(crate) fn drain_pool(
    pool: &mut VecDeque<TaskId>,
    scheduler: &mut dyn Scheduler,
    templates: &TemplateRegistry,
    workers: &mut [WorkerState],
    directory: &Directory,
    graph: &mut TaskGraph,
    limit: Option<usize>,
    batched: bool,
) -> Vec<(TaskId, Assignment)> {
    if batched {
        let frontier: Vec<&versa_core::TaskInstance> =
            pool.iter().map(|&tid| &graph.node(tid).instance).collect();
        let ctx = SchedCtx { templates, workers, directory, chain_hint: None };
        scheduler.begin_wave(&frontier, &ctx);
    }
    let mut out = Vec::new();
    let mut progress = true;
    while progress && limit.is_none_or(|l| out.len() < l) {
        progress = false;
        let mut i = 0;
        while i < pool.len() && limit.is_none_or(|l| out.len() < l) {
            let tid = pool[i];
            let assignment = {
                let node = graph.node(tid);
                let ctx = SchedCtx {
                    templates,
                    workers,
                    directory,
                    chain_hint: node.chain_hint,
                };
                let task = &node.instance;
                if scheduler.eager(task, &ctx) || idle_compatible_exists(&ctx, task) {
                    Some(scheduler.assign(task, &ctx))
                } else {
                    None
                }
            };
            match assignment {
                Some(a) => {
                    workers[a.worker.index()].enqueue(tid, a.version, a.estimate);
                    graph.node_mut(tid).assignment = Some(a);
                    out.push((tid, a));
                    pool.remove(i);
                    progress = true;
                }
                None => i += 1,
            }
        }
    }
    if batched {
        scheduler.end_wave();
    }
    out
}

/// Whether some idle worker can run at least one version of the task.
fn idle_compatible_exists(ctx: &SchedCtx<'_>, task: &versa_core::TaskInstance) -> bool {
    let tpl = ctx.templates.get(task.template);
    ctx.workers
        .iter()
        .any(|w| !w.is_retired() && w.is_idle() && tpl.versions_for(w.info.device).next().is_some())
}

#[cfg(test)]
mod tests {
    use super::*;
    use versa_core::{
        make_scheduler, DeviceKind, SchedulerKind, TaskInstance, WorkerId, WorkerInfo,
    };
    use versa_mem::{AccessMode, DataId, MemSpace, Region};

    fn setup() -> (TemplateRegistry, versa_core::TemplateId, Vec<WorkerState>, Directory) {
        let mut templates = TemplateRegistry::new();
        let tpl = templates
            .template("t")
            .main("gpu", &[DeviceKind::Cuda])
            .version("smp", &[DeviceKind::Smp])
            .register();
        let workers = vec![
            WorkerState::new(WorkerInfo {
                id: WorkerId(0),
                device: DeviceKind::Smp,
                space: MemSpace::HOST,
            }),
            WorkerState::new(WorkerInfo {
                id: WorkerId(1),
                device: DeviceKind::Cuda,
                space: MemSpace::device(0),
            }),
        ];
        let directory = Directory::new();
        directory.register(DataId(0), 64, MemSpace::HOST);
        (templates, tpl, workers, directory)
    }

    fn submit_n(graph: &mut TaskGraph, tpl: versa_core::TemplateId, n: u64) -> Vec<TaskId> {
        (0..n)
            .map(|i| {
                // Each task touches its own region so they are independent.
                let accesses =
                    vec![(Region::range(DataId(0), i % 64, 0), AccessMode::In)];
                graph.submit(TaskInstance {
                    id: TaskId(i),
                    template: tpl,
                    accesses,
                    data_set_size: 64,
                    job: None,
                })
            })
            .collect()
    }

    #[test]
    fn eager_scheduler_drains_everything_at_once() {
        let (templates, tpl, mut workers, directory) = setup();
        let mut graph = TaskGraph::new();
        submit_n(&mut graph, tpl, 10);
        let mut pool: VecDeque<TaskId> = graph.take_newly_ready().into();
        let mut sched = make_scheduler(&SchedulerKind::DepAware);
        let assigned = drain_pool(
            &mut pool,
            sched.as_mut(),
            &templates,
            &mut workers,
            &directory,
            &mut graph,
            None,
            true,
        );
        assert_eq!(assigned.len(), 10, "baselines push eagerly");
        assert!(pool.is_empty());
        // Everything went to the single GPU worker (main version is CUDA).
        assert!(assigned.iter().all(|(_, a)| a.worker == WorkerId(1)));
    }

    #[test]
    fn limit_caps_assignments_and_keeps_the_rest_pooled() {
        let (templates, tpl, mut workers, directory) = setup();
        let mut graph = TaskGraph::new();
        submit_n(&mut graph, tpl, 10);
        let mut pool: VecDeque<TaskId> = graph.take_newly_ready().into();
        let mut sched = make_scheduler(&SchedulerKind::DepAware);
        let assigned = drain_pool(
            &mut pool,
            sched.as_mut(),
            &templates,
            &mut workers,
            &directory,
            &mut graph,
            Some(3),
            true,
        );
        assert_eq!(assigned.len(), 3);
        assert_eq!(pool.len(), 7, "tasks beyond the budget stay pooled");
    }

    #[test]
    fn learning_phase_hands_out_one_task_per_idle_worker() {
        let (templates, tpl, mut workers, directory) = setup();
        let mut graph = TaskGraph::new();
        submit_n(&mut graph, tpl, 10);
        let mut pool: VecDeque<TaskId> = graph.take_newly_ready().into();
        let mut sched = make_scheduler(&SchedulerKind::versioning());
        let assigned = drain_pool(
            &mut pool,
            sched.as_mut(),
            &templates,
            &mut workers,
            &directory,
            &mut graph,
            None,
            true,
        );
        // Group is in the learning phase → only idle workers got work:
        // two workers → two assignments, eight tasks held back.
        assert_eq!(assigned.len(), 2);
        assert_eq!(pool.len(), 8);
        let versions: Vec<u16> = assigned.iter().map(|(_, a)| a.version.0).collect();
        assert_eq!(versions, vec![0, 1], "round-robin over versions");
    }

    #[test]
    fn pool_drains_as_workers_free_up() {
        let (templates, tpl, mut workers, directory) = setup();
        let mut graph = TaskGraph::new();
        submit_n(&mut graph, tpl, 4);
        let mut pool: VecDeque<TaskId> = graph.take_newly_ready().into();
        let mut sched = make_scheduler(&SchedulerKind::versioning());
        let first = drain_pool(
            &mut pool,
            sched.as_mut(),
            &templates,
            &mut workers,
            &directory,
            &mut graph,
            None,
            true,
        );
        assert_eq!(first.len(), 2);
        // Complete the GPU worker's task: it becomes idle again.
        let (tid, a) = first.iter().find(|(_, a)| a.worker == WorkerId(1)).copied().unwrap();
        workers[1].start_next();
        workers[1].finish(tid);
        graph.mark_running(tid);
        graph.complete(tid, a.worker);
        sched.task_finished(
            &graph.node(tid).instance,
            a,
            std::time::Duration::from_millis(5),
        );
        let second = drain_pool(
            &mut pool,
            sched.as_mut(),
            &templates,
            &mut workers,
            &directory,
            &mut graph,
            None,
            true,
        );
        assert_eq!(second.len(), 1, "one more task for the freed worker");
        assert_eq!(pool.len(), 1);
    }
}
