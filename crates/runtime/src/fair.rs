//! Cross-job fair dispatch ordering.
//!
//! When several jobs share one runtime (the `versa-serve` setting), the
//! ready pool can hold tasks of many jobs at once, and plain FIFO order
//! lets one huge job monopolize every dispatch slot of a wave. This
//! module reorders the pool with start-time fair queuing: within a
//! priority class, each job's tasks are laid out at virtual positions
//! `(dispatched + k) / weight`, so a job with weight 2 gets two dispatch
//! slots for every slot of a weight-1 job, and a newly admitted job's
//! first task sorts near the front regardless of how many tasks the big
//! job already pooled. Higher classes sort strictly first.
//!
//! The ordering only permutes *which ready task is considered next*; the
//! scheduler still picks worker and version per task. Untagged tasks
//! (the one-shot API) form a single implicit job, so enabling
//! [`RuntimeConfig::fair_scheduling`](crate::RuntimeConfig) changes
//! nothing for single-job workloads.

use crate::graph::TaskGraph;
use std::collections::HashMap;
use std::collections::VecDeque;
use versa_core::{JobTag, TaskId};

/// Virtual-position scale: keeps integer division by the weight precise
/// enough that distinct positions never collide spuriously.
const SCALE: u128 = 1 << 20;

/// Tag used for tasks submitted outside any job.
const UNTAGGED: JobTag = JobTag { job: u64::MAX, tenant: u32::MAX, class: 1, weight: 1 };

/// Per-job dispatch accounting, persistent across waves.
#[derive(Default, Debug)]
pub(crate) struct FairState {
    /// Tasks dispatched so far per job id.
    dispatched: HashMap<u64, u64>,
}

fn tag_of(graph: &TaskGraph, tid: TaskId) -> JobTag {
    graph.node(tid).instance.job.unwrap_or(UNTAGGED)
}

impl FairState {
    /// Stable-reorder the ready pool: priority class descending, then
    /// weighted virtual start position, then original pool order.
    pub fn order(&self, pool: &mut VecDeque<TaskId>, graph: &TaskGraph) {
        if pool.len() < 2 {
            return;
        }
        let mut pending: HashMap<u64, u64> = HashMap::new();
        let mut keyed: Vec<(u8, u128, usize, TaskId)> = pool
            .iter()
            .enumerate()
            .map(|(seq, &tid)| {
                let tag = tag_of(graph, tid);
                let k = pending.entry(tag.job).or_insert(0);
                let base = self.dispatched.get(&tag.job).copied().unwrap_or(0);
                let vstart = u128::from(base + *k) * SCALE / u128::from(tag.weight.max(1));
                *k += 1;
                (tag.class, vstart, seq, tid)
            })
            .collect();
        keyed.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
        pool.clear();
        pool.extend(keyed.into_iter().map(|(_, _, _, tid)| tid));
    }

    /// Forget a finished job's dispatch account (it has no tasks left,
    /// so its share can never be consulted again).
    pub fn forget_job(&mut self, job: u64) {
        self.dispatched.remove(&job);
    }

    /// Account dispatched tasks against their jobs' shares.
    pub fn note_dispatched<'a>(
        &mut self,
        graph: &TaskGraph,
        tids: impl Iterator<Item = &'a TaskId>,
    ) {
        for &tid in tids {
            *self.dispatched.entry(tag_of(graph, tid).job).or_insert(0) += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use versa_core::{TaskInstance, TemplateId};
    use versa_mem::{AccessMode, DataId, Region};

    fn graph_with_jobs(specs: &[(u64, u8, u32)]) -> (TaskGraph, VecDeque<TaskId>) {
        let mut g = TaskGraph::new();
        let mut pool = VecDeque::new();
        for (i, &(job, class, weight)) in specs.iter().enumerate() {
            let id = TaskId(i as u64);
            g.submit(TaskInstance {
                id,
                template: TemplateId(0),
                // Disjoint regions: every task independent.
                accesses: vec![(Region::range(DataId(0), i as u64, 1), AccessMode::In)],
                data_set_size: 1,
                job: Some(JobTag { job, tenant: 0, class, weight }),
            });
            pool.push_back(id);
        }
        g.take_newly_ready();
        (g, pool)
    }

    fn jobs_of(pool: &VecDeque<TaskId>, g: &TaskGraph) -> Vec<u64> {
        pool.iter().map(|&t| tag_of(g, t).job).collect()
    }

    #[test]
    fn equal_weights_interleave_round_robin() {
        // Job 0's four tasks pooled first, then job 1's four.
        let specs: Vec<(u64, u8, u32)> =
            (0..4).map(|_| (0, 1, 1)).chain((0..4).map(|_| (1, 1, 1))).collect();
        let (g, mut pool) = graph_with_jobs(&specs);
        FairState::default().order(&mut pool, &g);
        assert_eq!(jobs_of(&pool, &g), vec![0, 1, 0, 1, 0, 1, 0, 1]);
    }

    #[test]
    fn weights_skew_the_interleave() {
        let specs: Vec<(u64, u8, u32)> =
            (0..6).map(|_| (0, 1, 2)).chain((0..3).map(|_| (1, 1, 1))).collect();
        let (g, mut pool) = graph_with_jobs(&specs);
        FairState::default().order(&mut pool, &g);
        let jobs = jobs_of(&pool, &g);
        // Weight 2 gets two slots per weight-1 slot.
        assert_eq!(jobs, vec![0, 1, 0, 0, 1, 0, 0, 1, 0]);
    }

    #[test]
    fn higher_class_preempts_ordering() {
        let specs: Vec<(u64, u8, u32)> =
            (0..3).map(|_| (0, 1, 1)).chain((0..2).map(|_| (1, 2, 1))).collect();
        let (g, mut pool) = graph_with_jobs(&specs);
        FairState::default().order(&mut pool, &g);
        assert_eq!(jobs_of(&pool, &g), vec![1, 1, 0, 0, 0]);
    }

    #[test]
    fn dispatch_history_moves_heavy_job_back() {
        // Job 0 already consumed 10 slots; job 1 is brand new — its tasks
        // sort to the front even though job 0's were pooled first.
        let specs: Vec<(u64, u8, u32)> =
            (0..3).map(|_| (0, 1, 1)).chain((0..3).map(|_| (1, 1, 1))).collect();
        let (g, mut pool) = graph_with_jobs(&specs);
        let mut fair = FairState::default();
        let job0: Vec<TaskId> = (0..3).map(|i| TaskId(i as u64)).collect();
        for _ in 0..4 {
            fair.note_dispatched(&g, job0[..1].iter());
        }
        fair.order(&mut pool, &g);
        assert_eq!(jobs_of(&pool, &g), vec![1, 1, 1, 0, 0, 0]);
    }

    #[test]
    fn untagged_tasks_keep_submission_order() {
        let mut g = TaskGraph::new();
        let mut pool = VecDeque::new();
        for i in 0..5u64 {
            let id = TaskId(i);
            g.submit(TaskInstance {
                id,
                template: TemplateId(0),
                accesses: vec![(Region::range(DataId(0), i, 1), AccessMode::In)],
                data_set_size: 1,
                job: None,
            });
            pool.push_back(id);
        }
        g.take_newly_ready();
        let before: Vec<TaskId> = pool.iter().copied().collect();
        FairState::default().order(&mut pool, &g);
        let after: Vec<TaskId> = pool.iter().copied().collect();
        assert_eq!(before, after);
    }
}
