//! The user-facing runtime: data allocation, task submission, execution.

use crate::fair::FairState;
use crate::graph::TaskGraph;
use crate::native::{KernelCtx, NativeConfig};
use crate::report::QuarantinedVersion;
use crate::{RunError, RunReport, RuntimeConfig};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use versa_core::{
    make_scheduler, DeviceKind, JobTag, Scheduler, TaskId, TaskInstance, TemplateBuilder,
    TemplateId, TemplateRegistry, VersionId, VersioningScheduler, WorkerId, WorkerInfo,
    WorkerState,
};
use versa_mem::{AccessMode, Arena, DataId, DeviceCache, Directory, MemSpace, Region};
use versa_sim::{CostTable, PlatformConfig};

/// A task implementation body for native execution.
pub type NativeFn = Arc<dyn Fn(&mut KernelCtx<'_>) + Send + Sync>;

pub(crate) enum EngineKind {
    /// Virtual-time execution on a simulated heterogeneous node. The
    /// device caches persist across runs/waves so residency decisions
    /// made for one job carry over to the next.
    Sim { platform: PlatformConfig, caches: Option<Vec<DeviceCache>> },
    /// Real execution on OS threads with emulated accelerator devices.
    Native { cfg: NativeConfig, arena: Arc<Arena> },
}

/// The versa runtime: an OmpSs-like task runtime with multi-version task
/// scheduling.
///
/// Construct with [`Runtime::simulated`] (virtual time; reproduces the
/// paper's experiments without GPUs) or [`Runtime::native`] (real threads,
/// real memory copies, real kernels). Then:
///
/// 1. register task templates and their versions ([`Runtime::template`]);
/// 2. bind execution costs ([`Runtime::bind_cost`], simulated runs) and/or
///    kernel bodies ([`Runtime::bind_native`], native runs);
/// 3. allocate data ([`Runtime::alloc_bytes`], [`Runtime::alloc_from_f64`], …);
/// 4. submit tasks ([`Runtime::task`] / [`Runtime::submit`]);
/// 5. [`Runtime::run`] — the `taskwait`: executes everything submitted so
///    far and returns a [`RunReport`].
///
/// State (data placement, scheduler profiles) persists across `run()`
/// calls, so iterative applications keep benefiting from what the
/// versioning scheduler has learned.
///
/// ```
/// use std::time::Duration;
/// use versa_core::{DeviceKind, SchedulerKind, VersionId};
/// use versa_runtime::{Runtime, RuntimeConfig};
/// use versa_sim::PlatformConfig;
///
/// let mut rt = Runtime::simulated(
///     RuntimeConfig::with_scheduler(SchedulerKind::versioning()),
///     PlatformConfig::minotauro(2, 1),
/// );
/// let task = rt
///     .template("axpy")
///     .main("axpy_cuda", &[DeviceKind::Cuda])
///     .version("axpy_smp", &[DeviceKind::Smp])
///     .register();
/// rt.bind_cost(task, VersionId(0), |_| Duration::from_millis(1));
/// rt.bind_cost(task, VersionId(1), |_| Duration::from_millis(8));
///
/// let x = rt.alloc_bytes(1 << 20);
/// let y = rt.alloc_bytes(1 << 20);
/// for _ in 0..20 {
///     rt.task(task).read(x).read_write(y).submit();
/// }
/// let report = rt.run().expect("no task exhausted its retries");
/// assert_eq!(report.tasks_executed, 20);
/// assert!(report.makespan > Duration::ZERO);
/// ```
pub struct Runtime {
    pub(crate) config: RuntimeConfig,
    pub(crate) templates: TemplateRegistry,
    pub(crate) directory: Directory,
    pub(crate) graph: TaskGraph,
    pub(crate) workers: Vec<WorkerState>,
    pub(crate) scheduler: Box<dyn Scheduler>,
    pub(crate) costs: CostTable,
    pub(crate) kernels: HashMap<(TemplateId, VersionId), NativeFn>,
    pub(crate) engine: EngineKind,
    pub(crate) run_count: u64,
    /// Ready tasks not yet dispatched — persists across bounded waves.
    pub(crate) pending: VecDeque<TaskId>,
    /// Cross-job fair-queuing dispatch accounting.
    pub(crate) fair: FairState,
    /// Tag stamped onto subsequently submitted tasks (multi-job service).
    current_job: Option<JobTag>,
    /// Test hook: pending injected staging faults per datum (native
    /// engine, async mode). See [`Runtime::inject_stage_fault`].
    pub(crate) stage_faults: HashMap<DataId, u32>,
    pub(crate) remotes: Vec<crate::remote::RemoteAttachment>,
    next_data: u32,
}

impl Runtime {
    fn make_workers(smp: usize, gpus: usize) -> Vec<WorkerState> {
        let mut workers = Vec::with_capacity(smp + gpus);
        for i in 0..smp {
            workers.push(WorkerState::new(WorkerInfo {
                id: WorkerId(i as u16),
                device: DeviceKind::Smp,
                space: MemSpace::HOST,
            }));
        }
        for g in 0..gpus {
            workers.push(WorkerState::new(WorkerInfo {
                id: WorkerId((smp + g) as u16),
                device: DeviceKind::Cuda,
                space: MemSpace::device(g as u16),
            }));
        }
        workers
    }

    /// Runtime over the simulated heterogeneous node.
    ///
    /// # Panics
    /// Panics if `platform` fails validation.
    pub fn simulated(config: RuntimeConfig, platform: PlatformConfig) -> Runtime {
        platform.validate().expect("invalid platform");
        let mut workers = Self::make_workers(platform.smp_workers, platform.gpus);
        // Remote-node workers: SMP cores living in the node's mirror
        // space `device(gpus + j)`, reached over its NIC link — the
        // simulated analogue of `attach_remote_node`.
        for (j, node) in platform.nodes.iter().enumerate() {
            let space = MemSpace::device((platform.gpus + j) as u16);
            for _ in 0..node.smp_workers {
                workers.push(WorkerState::new(WorkerInfo {
                    id: WorkerId(workers.len() as u16),
                    device: DeviceKind::Smp,
                    space,
                }));
            }
        }
        let scheduler = make_scheduler(&config.scheduler);
        Runtime {
            config,
            templates: TemplateRegistry::new(),
            directory: Directory::new(),
            graph: TaskGraph::new(),
            workers,
            scheduler,
            costs: CostTable::new(),
            kernels: HashMap::new(),
            engine: EngineKind::Sim { platform, caches: None },
            run_count: 0,
            pending: VecDeque::new(),
            fair: FairState::default(),
            current_job: None,
            stage_faults: HashMap::new(),
            remotes: Vec::new(),
            next_data: 0,
        }
    }

    /// Runtime executing for real on OS threads. SMP workers run kernels
    /// on one core each; each emulated GPU runs kernels on an internal
    /// pool of [`NativeConfig::gpu_lanes`] cores, giving it a genuine
    /// speed advantage for parallel kernels.
    pub fn native(config: RuntimeConfig, native: NativeConfig) -> Runtime {
        native.validate().expect("invalid native config");
        let workers = Self::make_workers(native.smp_workers, native.gpus);
        let scheduler = make_scheduler(&config.scheduler);
        let arena = Arc::new(Arena::new(native.gpus));
        Runtime {
            config,
            templates: TemplateRegistry::new(),
            directory: Directory::new(),
            graph: TaskGraph::new(),
            workers,
            scheduler,
            costs: CostTable::new(),
            kernels: HashMap::new(),
            engine: EngineKind::Native { cfg: native, arena },
            run_count: 0,
            pending: VecDeque::new(),
            fair: FairState::default(),
            current_job: None,
            stage_faults: HashMap::new(),
            remotes: Vec::new(),
            next_data: 0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// Mutable access to the configuration. The behavioural flags
    /// (`prefetch`, `flush_on_wait`, `fair_scheduling`, …) take effect
    /// on the next run; changing `scheduler` here has no effect — the
    /// policy object was built at construction.
    pub fn config_mut(&mut self) -> &mut RuntimeConfig {
        &mut self.config
    }

    /// The registered templates.
    pub fn templates(&self) -> &TemplateRegistry {
        &self.templates
    }

    /// Worker descriptions (SMP workers first, then one per GPU).
    pub fn workers(&self) -> Vec<WorkerInfo> {
        self.workers.iter().map(|w| w.info).collect()
    }

    /// Attach a remote node: its advertised workers become schedulable
    /// like local ones, against a fresh *mirror space* in the native
    /// arena (see [`crate::remote`] for the data plane). Returns the
    /// node's dense 1-based id (0 is the coordinator process itself).
    ///
    /// Remote execution rides the synchronous engine, so attaching a
    /// node turns `async_transfers` off for this runtime.
    ///
    /// # Panics
    /// Panics on a simulated runtime (use
    /// [`PlatformConfig::nodes`](versa_sim::PlatformConfig) there) or if
    /// the node advertises zero workers.
    pub fn attach_remote_node(&mut self, node: Arc<dyn crate::remote::RemoteNode>) -> u16 {
        let EngineKind::Native { arena, .. } = &self.engine else {
            panic!("attach_remote_node requires a native runtime");
        };
        let caps = node.caps();
        assert!(caps.smp_workers > 0, "remote node {:?} advertises no workers", caps.name);
        let space = MemSpace::device((arena.space_count() - 1) as u16);
        arena.add_spaces(1);
        for _ in 0..caps.smp_workers {
            self.workers.push(WorkerState::new(WorkerInfo {
                id: WorkerId(self.workers.len() as u16),
                device: DeviceKind::Smp,
                space,
            }));
        }
        let node_id = (self.remotes.len() + 1) as u16;
        self.config.async_transfers = false;
        self.remotes.push(crate::remote::RemoteAttachment { node, node_id, space });
        node_id
    }

    /// Which cluster node hosts a worker (0 = this process).
    pub fn node_of_worker(&self, worker: WorkerId) -> u16 {
        let space = self.workers[worker.index()].info.space;
        if let EngineKind::Sim { platform, .. } = &self.engine {
            // Simulated nodes: device spaces past the GPUs are node
            // mirror spaces (node j at device(gpus + j), 1-based id).
            return match space.device_index() {
                Some(d) if usize::from(d) >= platform.gpus => {
                    (usize::from(d) - platform.gpus + 1) as u16
                }
                _ => 0,
            };
        }
        self.remotes.iter().find(|r| r.space == space).map_or(0, |r| r.node_id)
    }

    /// Snapshot the remote lookup tables the sync engine needs.
    pub(crate) fn remote_plan(&self) -> crate::remote::RemotePlan {
        crate::remote::RemotePlan {
            by_space: self
                .remotes
                .iter()
                .map(|r| (r.space, Arc::clone(&r.node)))
                .collect(),
            node_of_worker: self
                .workers
                .iter()
                .map(|w| {
                    self.remotes
                        .iter()
                        .find(|r| r.space == w.info.space)
                        .map_or(0, |r| r.node_id)
                })
                .collect(),
        }
    }

    /// The native arena, when this is a native runtime — the worker
    /// process side of `versa-net` executes kernels against it directly.
    pub fn arena(&self) -> Option<Arc<Arena>> {
        match &self.engine {
            EngineKind::Native { arena, .. } => Some(Arc::clone(arena)),
            EngineKind::Sim { .. } => None,
        }
    }

    /// Execute a bound kernel by template *name* against host-space data,
    /// outside the engines — the remote worker process path: no graph, no
    /// scheduler, panic-safe. Returns the measured kernel time.
    pub fn execute_bound_kernel(
        &self,
        template: &str,
        version: VersionId,
        accesses: &[(Region, AccessMode)],
    ) -> Result<std::time::Duration, String> {
        let arena = self.arena().ok_or("execute_bound_kernel requires a native runtime")?;
        let tpl = self
            .templates
            .by_name(template)
            .ok_or_else(|| format!("unknown template {template:?}"))?;
        let kernel = self
            .kernels
            .get(&(tpl, version))
            .ok_or_else(|| format!("no native kernel bound for ({template:?}, {version})"))?
            .clone();
        crate::native::execute_detached(kernel, accesses.to_vec(), &arena, MemSpace::HOST)
    }

    /// Snapshot the bound native kernels and arena into a standalone,
    /// thread-safe executor — what a remote worker process shares across
    /// its serve threads (the full `Runtime` is not `Sync`). `None` on
    /// the sim engine.
    pub fn detach_executor(&self) -> Option<DetachedExecutor> {
        let arena = self.arena()?;
        let kernels = self
            .kernels
            .iter()
            .map(|(&(tpl, v), k)| ((self.templates.get(tpl).name.clone(), v), k.clone()))
            .collect();
        Some(DetachedExecutor { kernels, arena })
    }

    /// Start declaring a task template (the `#pragma omp task` +
    /// `implements` annotations of paper Fig. 4).
    pub fn template(&mut self, name: &str) -> TemplateBuilder<'_> {
        self.templates.template(name)
    }

    /// Bind a simulated execution-time model for one version.
    pub fn bind_cost(
        &mut self,
        template: TemplateId,
        version: VersionId,
        f: impl Fn(u64) -> std::time::Duration + Send + Sync + 'static,
    ) {
        self.costs.set_fn(template, version, f);
    }

    /// Bind a native kernel body for one version.
    pub fn bind_native(
        &mut self,
        template: TemplateId,
        version: VersionId,
        f: impl Fn(&mut KernelCtx<'_>) + Send + Sync + 'static,
    ) {
        self.kernels.insert((template, version), Arc::new(f));
    }

    /// Replace or tweak the scheduling policy in place (e.g. to install
    /// a baseline with non-default parameters). Only do this before any
    /// task has been submitted; swapping mid-run discards learned state.
    pub fn scheduler_mut(&mut self) -> &mut Box<dyn Scheduler> {
        &mut self.scheduler
    }

    /// The versioning scheduler, if that is the configured policy — for
    /// seeding profile hints or reading the learned Table I.
    pub fn versioning(&self) -> Option<&VersioningScheduler> {
        self.scheduler.as_versioning()
    }

    /// Mutable access to the versioning scheduler, if configured.
    pub fn versioning_mut(&mut self) -> Option<&mut VersioningScheduler> {
        self.scheduler.as_versioning_mut()
    }

    // ------------------------------------------------------------------
    // Data management
    // ------------------------------------------------------------------

    fn register_data(&mut self, bytes: u64) -> DataId {
        let id = DataId(self.next_data);
        self.next_data += 1;
        self.directory.register(id, bytes, MemSpace::HOST);
        id
    }

    /// Allocate `bytes` bytes of runtime-managed data (zero-filled in
    /// native mode; contentless in simulated mode).
    pub fn alloc_bytes(&mut self, bytes: u64) -> DataId {
        let id = self.register_data(bytes);
        if let EngineKind::Native { arena, .. } = &self.engine {
            arena.alloc_host_zeroed(id, bytes as usize);
        }
        id
    }

    /// Allocate runtime-managed data initialized from an `f64` slice.
    pub fn alloc_from_f64(&mut self, init: &[f64]) -> DataId {
        let bytes: Vec<u8> = init.iter().flat_map(|v| v.to_ne_bytes()).collect();
        let id = self.register_data(bytes.len() as u64);
        if let EngineKind::Native { arena, .. } = &self.engine {
            arena.alloc_host(id, &bytes);
        }
        id
    }

    /// Allocate runtime-managed data initialized from an `f32` slice.
    pub fn alloc_from_f32(&mut self, init: &[f32]) -> DataId {
        let bytes: Vec<u8> = init.iter().flat_map(|v| v.to_ne_bytes()).collect();
        let id = self.register_data(bytes.len() as u64);
        if let EngineKind::Native { arena, .. } = &self.engine {
            arena.alloc_host(id, &bytes);
        }
        id
    }

    /// Size of an allocation in bytes.
    pub fn data_bytes(&self, id: DataId) -> u64 {
        self.directory.bytes(id)
    }

    /// Free a runtime-managed allocation: the directory forgets it and
    /// (in native mode) every copy is dropped.
    ///
    /// # Panics
    /// Panics if tasks touching the allocation are still pending or in
    /// flight (use [`Runtime::try_free`] for a recoverable check).
    pub fn free(&mut self, id: DataId) {
        self.try_free(id).unwrap_or_else(|e| panic!("{e}"));
    }

    /// Free an allocation, or report why it cannot be freed yet. Unlike
    /// the old whole-graph gate, only tasks that actually reference the
    /// allocation block the free — in a multi-job service, one job can
    /// release its data while another job's tasks are still queued.
    ///
    /// # Errors
    /// Returns a description of the conflict when unfinished tasks still
    /// reference the allocation; the allocation is left untouched.
    pub fn try_free(&mut self, id: DataId) -> Result<(), FreeError> {
        let users = self.graph.live_users(id);
        if users > 0 {
            return Err(FreeError { data: id, live_users: users });
        }
        self.directory.unregister(id);
        self.graph.forget_data(id);
        if let EngineKind::Native { arena, .. } = &self.engine {
            arena.free(id);
        }
        Ok(())
    }

    /// Recycle graph storage for completed tasks: drop every finished
    /// task with an id below `before` from the front of the graph's
    /// window (typically `before` is the earliest task id any
    /// still-active job owns — a pruned task's node can no longer be
    /// inspected). Returns how many nodes were recycled. `versa-serve`
    /// calls this between waves so steady-state admission allocates
    /// O(live window), not O(jobs ever served).
    pub fn prune_done_tasks(&mut self, before: TaskId) -> usize {
        self.graph.prune_done_prefix(before)
    }

    /// Drop the fair-queuing dispatch account of a finished job, so a
    /// long-running service's accounting table does not grow with every
    /// job ever served. Call only once the job has no tasks left.
    pub fn forget_job(&mut self, job: u64) {
        self.fair.forget_job(job);
    }

    /// Serialize the versioning scheduler's learned profile to the hints
    /// text format (paper §VII: a file "written by OmpSs runtime from a
    /// previous application's execution"). Returns `None` when another
    /// policy is active.
    pub fn save_hints(&self) -> Option<String> {
        self.scheduler
            .as_versioning()
            .map(|v| versa_core::profile::render_hints(v.profiles(), &self.templates))
    }

    /// Seed the versioning scheduler from hints text produced by
    /// [`Runtime::save_hints`]. Returns `(applied, skipped)` record
    /// counts, or an error for malformed text — including a
    /// [`PolicyMismatch`](versa_core::profile::HintsError::PolicyMismatch)
    /// when the file was recorded under different bucketing/mean
    /// policies than the active scheduler uses.
    ///
    /// # Panics
    /// Panics if the active policy is not the versioning scheduler.
    pub fn load_hints(&mut self, text: &str) -> Result<(usize, usize), versa_core::profile::HintsError> {
        let file = versa_core::profile::parse_hints(text)?;
        let templates = self.templates.clone();
        let scheduler = self
            .scheduler
            .as_versioning_mut()
            .expect("load_hints requires the versioning scheduler");
        versa_core::profile::apply_hints(scheduler.profiles_mut(), &templates, &file)
    }

    /// Read data back as `f64`s, flushing the latest copy to the host
    /// first (the `taskwait on(...)` idiom). Native engine only.
    ///
    /// # Panics
    /// Panics in simulated mode (there are no bytes to read) or if tasks
    /// touching the datum are still in flight (call [`Runtime::run`]
    /// first).
    pub fn read_f64(&mut self, id: DataId) -> Vec<f64> {
        let bytes = self.read_bytes(id);
        bytes.chunks_exact(8).map(|c| f64::from_ne_bytes(c.try_into().unwrap())).collect()
    }

    /// Read data back as `f32`s (see [`Runtime::read_f64`]).
    pub fn read_f32(&mut self, id: DataId) -> Vec<f32> {
        let bytes = self.read_bytes(id);
        bytes.chunks_exact(4).map(|c| f32::from_ne_bytes(c.try_into().unwrap())).collect()
    }

    fn read_bytes(&mut self, id: DataId) -> Vec<u8> {
        assert!(
            self.graph.live_users(id) == 0,
            "read of {id:?} while tasks referencing it are in flight; run() first"
        );
        let EngineKind::Native { arena, .. } = &self.engine else {
            panic!("read_bytes is only available on the native engine");
        };
        if let Some(t) = self.directory.flush_to_host(id) {
            arena.perform(&t);
        }
        arena.read(id, MemSpace::HOST)
    }

    // ------------------------------------------------------------------
    // Task submission
    // ------------------------------------------------------------------

    /// Stamp every subsequently submitted task with a job tag (or stop
    /// stamping with `None`). The tag drives fair multi-job dispatch
    /// ordering when [`RuntimeConfig::fair_scheduling`] is on and lets
    /// reports attribute tasks to jobs. One-shot applications never need
    /// this; `versa-serve` sets it around each job's build closure.
    pub fn set_job_tag(&mut self, tag: Option<JobTag>) {
        self.current_job = tag;
    }

    /// The task graph (read-only): inspect task states, count live
    /// tasks, or map a job's id range to completion states.
    pub fn graph(&self) -> &TaskGraph {
        &self.graph
    }

    /// Submit a task instance with explicit accesses.
    pub fn submit(&mut self, template: TemplateId, accesses: Vec<(Region, AccessMode)>) -> TaskId {
        for (region, _) in &accesses {
            let bytes = self.directory.bytes(region.data);
            assert!(
                region.end() <= bytes,
                "access {region:?} exceeds allocation size {bytes}"
            );
        }
        let data_set_size =
            TaskInstance::data_set_size_of(&accesses, |d| self.directory.bytes(d));
        let id = TaskId(self.graph.len() as u64);
        self.graph.submit(TaskInstance { id, template, accesses, data_set_size, job: self.current_job })
    }

    /// Fluent task submission: `rt.task(tpl).read(a).read(b).read_write(c).submit()`.
    pub fn task(&mut self, template: TemplateId) -> TaskSubmitter<'_> {
        TaskSubmitter { rt: self, template, accesses: Vec::new() }
    }

    // ------------------------------------------------------------------
    // Execution
    // ------------------------------------------------------------------

    /// Execute every submitted-but-unfinished task to completion — the
    /// implicit `taskwait` — and report what happened. With
    /// [`RuntimeConfig::flush_on_wait`] set, device-resident data is
    /// flushed back to host memory at the end (and accounted as Output
    /// Tx).
    ///
    /// # Errors
    /// Task failures (native kernel panics, simulated injected faults)
    /// are recoverable: the task is rescheduled, failing versions are
    /// quarantined, and the run keeps going. Only when a single task
    /// fails more than [`RuntimeConfig::max_task_retries`] times does
    /// the run abort with a [`RunError`] carrying the partial
    /// [`RunReport`]. An aborted runtime still has tasks in flight and
    /// must not be reused.
    pub fn run(&mut self) -> Result<RunReport, RunError> {
        self.run_bounded(None)
    }

    /// Execute one *wave*: dispatch at most `max_dispatch` tasks (counted
    /// at dispatch, so an eager scheduler cannot blow the budget by bulk
    /// enqueueing), let everything dispatched drain, and return. Ready
    /// tasks beyond the budget stay pooled in the runtime for the next
    /// wave; [`RunReport::completed`] says whether the graph fully
    /// drained. `None` behaves exactly like [`Runtime::run`].
    ///
    /// This is the re-entry point a multi-job service loops on: between
    /// waves it can admit new jobs, whose tasks then compete fairly
    /// (see [`RuntimeConfig::fair_scheduling`]) with the backlog.
    ///
    /// # Errors
    /// As [`Runtime::run`].
    pub fn run_bounded(&mut self, max_dispatch: Option<u64>) -> Result<RunReport, RunError> {
        let report = match &self.engine {
            EngineKind::Sim { .. } => crate::sim_engine::run_sim(self, max_dispatch),
            EngineKind::Native { .. } => crate::native::run_native(self, max_dispatch),
        };
        self.run_count += 1;
        report
    }

    /// Like [`Runtime::run`], but without the trailing flush — the
    /// `taskwait(noflush)` of paper §III: tasks synchronize, but data is
    /// left wherever it lives (typically on the devices), so a following
    /// batch can reuse it without round-tripping through host memory.
    ///
    /// # Errors
    /// As [`Runtime::run`].
    pub fn run_noflush(&mut self) -> Result<RunReport, RunError> {
        let saved = self.config.flush_on_wait;
        self.config.flush_on_wait = false;
        let report = self.run();
        self.config.flush_on_wait = saved;
        report
    }

    /// Install a fault-injection plan on the simulated platform (a
    /// convenience over rebuilding the [`PlatformConfig`]). Plans are
    /// evaluated at every simulated task start; an empty plan leaves the
    /// simulation byte-identical to a run without one.
    ///
    /// # Panics
    /// Panics on the native engine (panics there are the real faults)
    /// or if the plan fails validation.
    pub fn set_fault_plan(&mut self, faults: versa_sim::FaultPlan) {
        let EngineKind::Sim { platform, .. } = &mut self.engine else {
            panic!("fault plans only apply to the simulated engine");
        };
        faults.validate(platform.nodes.len()).expect("invalid fault plan");
        platform.faults = faults;
    }

    /// Arrange for the next `times` staged copies of `data` to panic
    /// mid-transfer (native engine, `async_transfers` mode). This is the
    /// staging analogue of the simulated engine's fault plans: it proves
    /// a transfer-lane failure routes through the same
    /// `task_failed`/retry/quarantine machinery as a kernel panic. The
    /// sync path never consults it (its copies run on the coordinator),
    /// and an empty plan leaves execution byte-identical.
    pub fn inject_stage_fault(&mut self, data: DataId, times: u32) {
        if times > 0 {
            *self.stage_faults.entry(data).or_insert(0) += times;
        }
    }

    /// Consume one pending staging fault for `data`, if any (called by
    /// the async planner per planned copy).
    pub(crate) fn take_stage_fault(&mut self, data: DataId) -> bool {
        match self.stage_faults.get_mut(&data) {
            Some(n) if *n > 0 => {
                *n -= 1;
                if *n == 0 {
                    self.stage_faults.remove(&data);
                }
                true
            }
            _ => false,
        }
    }

    /// Versions currently quarantined by the versioning scheduler
    /// (empty for other policies).
    pub fn quarantined_versions(&self) -> Vec<QuarantinedVersion> {
        self.scheduler
            .as_versioning()
            .map(|v| v.profiles().quarantined().into_iter().map(Into::into).collect())
            .unwrap_or_default()
    }
}

/// A thread-safe snapshot of a runtime's bound native kernels plus its
/// arena, produced by [`Runtime::detach_executor`]. A remote worker
/// process serves concurrent `Exec` requests through one of these: the
/// kernels are `Arc` closures and the arena synchronizes internally, so
/// the executor is freely shared across serve threads.
pub struct DetachedExecutor {
    kernels: HashMap<(String, VersionId), NativeFn>,
    arena: Arc<Arena>,
}

impl DetachedExecutor {
    /// The arena backing kernel execution (shipments land here).
    pub fn arena(&self) -> &Arc<Arena> {
        &self.arena
    }

    /// Execute a bound kernel by template name against host-space data.
    /// Panic-safe; returns the measured kernel time.
    pub fn execute(
        &self,
        template: &str,
        version: VersionId,
        accesses: &[(Region, AccessMode)],
    ) -> Result<std::time::Duration, String> {
        let kernel = self
            .kernels
            .get(&(template.to_string(), version))
            .ok_or_else(|| format!("no native kernel bound for ({template:?}, {version})"))?
            .clone();
        crate::native::execute_detached(kernel, accesses.to_vec(), &self.arena, MemSpace::HOST)
    }
}

/// Builder returned by [`Runtime::task`].
pub struct TaskSubmitter<'a> {
    rt: &'a mut Runtime,
    template: TemplateId,
    accesses: Vec<(Region, AccessMode)>,
}

impl TaskSubmitter<'_> {
    /// `input(...)` clause over a whole allocation.
    pub fn read(mut self, data: DataId) -> Self {
        let bytes = self.rt.directory.bytes(data);
        self.accesses.push((Region::whole(data, bytes), AccessMode::In));
        self
    }

    /// `output(...)` clause over a whole allocation.
    pub fn write(mut self, data: DataId) -> Self {
        let bytes = self.rt.directory.bytes(data);
        self.accesses.push((Region::whole(data, bytes), AccessMode::Out));
        self
    }

    /// `inout(...)` clause over a whole allocation.
    pub fn read_write(mut self, data: DataId) -> Self {
        let bytes = self.rt.directory.bytes(data);
        self.accesses.push((Region::whole(data, bytes), AccessMode::InOut));
        self
    }

    /// An explicit sub-range access (array-section dependence).
    pub fn region(mut self, region: Region, mode: AccessMode) -> Self {
        self.accesses.push((region, mode));
        self
    }

    /// Create the task.
    pub fn submit(self) -> TaskId {
        let TaskSubmitter { rt, template, accesses } = self;
        rt.submit(template, accesses)
    }
}

/// Why [`Runtime::try_free`] refused to free an allocation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FreeError {
    /// The allocation that could not be freed.
    pub data: DataId,
    /// How many unfinished tasks still reference it.
    pub live_users: usize,
}

impl std::fmt::Display for FreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cannot free {:?}: {} unfinished task(s) still reference it; run() first",
            self.data, self.live_users
        )
    }
}

impl std::error::Error for FreeError {}

#[cfg(test)]
mod tests {
    use super::*;
    use versa_core::SchedulerKind;

    fn sim_runtime() -> Runtime {
        Runtime::simulated(
            RuntimeConfig::with_scheduler(SchedulerKind::DepAware),
            PlatformConfig::minotauro(2, 1),
        )
    }

    #[test]
    fn workers_are_smp_then_gpu() {
        let rt = sim_runtime();
        let infos = rt.workers();
        assert_eq!(infos.len(), 3);
        assert_eq!(infos[0].device, DeviceKind::Smp);
        assert_eq!(infos[1].device, DeviceKind::Smp);
        assert_eq!(infos[2].device, DeviceKind::Cuda);
        assert_eq!(infos[2].space, MemSpace::device(0));
    }

    #[test]
    fn alloc_registers_in_directory() {
        let mut rt = sim_runtime();
        let a = rt.alloc_bytes(1024);
        assert_eq!(rt.data_bytes(a), 1024);
        let b = rt.alloc_from_f64(&[1.0, 2.0, 3.0]);
        assert_eq!(rt.data_bytes(b), 24);
        assert_ne!(a, b);
    }

    #[test]
    fn task_builder_computes_data_set_size() {
        let mut rt = sim_runtime();
        let tpl = rt
            .template("t")
            .main("smp", &[DeviceKind::Smp])
            .register();
        let a = rt.alloc_bytes(100);
        let c = rt.alloc_bytes(50);
        let id = rt.task(tpl).read(a).read_write(c).submit();
        assert_eq!(rt.graph.node(id).instance.data_set_size, 150);
        assert_eq!(rt.graph.node(id).instance.accesses.len(), 2);
    }

    #[test]
    #[should_panic(expected = "exceeds allocation size")]
    fn oversized_region_rejected() {
        let mut rt = sim_runtime();
        let tpl = rt.template("t").main("smp", &[DeviceKind::Smp]).register();
        let a = rt.alloc_bytes(10);
        let _ = rt
            .task(tpl)
            .region(Region::range(a, 0, 20), AccessMode::In)
            .submit();
    }

    #[test]
    fn free_forgets_the_allocation() {
        let mut rt = sim_runtime();
        let a = rt.alloc_bytes(10);
        rt.free(a);
        // The id can be observed gone via the directory.
        assert!(rt.directory.state(a).is_none());
    }

    #[test]
    fn free_is_rejected_while_queued_tasks_reference_the_data() {
        let mut rt = sim_runtime();
        let tpl = rt.template("t").main("t_smp", &[DeviceKind::Smp]).register();
        rt.bind_cost(tpl, versa_core::VersionId(0), |_| std::time::Duration::from_millis(1));
        let used = rt.alloc_bytes(64);
        let idle = rt.alloc_bytes(64);
        rt.task(tpl).read_write(used).submit();

        let err = rt.try_free(used).unwrap_err();
        assert_eq!(err, FreeError { data: used, live_users: 1 });
        assert!(err.to_string().contains("unfinished task"));
        // The rejected free left the allocation intact...
        assert!(rt.directory.state(used).is_some());
        // ...and data no queued task references frees fine meanwhile.
        rt.try_free(idle).expect("no task references this allocation");

        rt.run().expect("run failed");
        rt.try_free(used).expect("all referencing tasks are done");
        assert!(rt.directory.state(used).is_none());
    }

    #[test]
    #[should_panic(expected = "unfinished task")]
    fn free_panics_while_queued_tasks_reference_the_data() {
        let mut rt = sim_runtime();
        let tpl = rt.template("t").main("t_smp", &[DeviceKind::Smp]).register();
        rt.bind_cost(tpl, versa_core::VersionId(0), |_| std::time::Duration::from_millis(1));
        let a = rt.alloc_bytes(64);
        rt.task(tpl).read_write(a).submit();
        rt.free(a);
    }

    #[test]
    fn hints_roundtrip_through_runtime_api() {
        let mut rt = Runtime::simulated(
            RuntimeConfig::default(),
            PlatformConfig::minotauro(1, 1),
        );
        let tpl = rt
            .template("t")
            .main("t_gpu", &[DeviceKind::Cuda])
            .version("t_smp", &[DeviceKind::Smp])
            .register();
        rt.versioning_mut().unwrap().profiles_mut().seed(
            tpl,
            2,
            1000,
            versa_core::VersionId(0),
            std::time::Duration::from_millis(5),
            10,
        );
        let text = rt.save_hints().expect("versioning active");
        assert!(text.contains("hint t 0"));
        let mut rt2 = Runtime::simulated(
            RuntimeConfig::default(),
            PlatformConfig::minotauro(1, 1),
        );
        let _tpl2 = rt2
            .template("t")
            .main("t_gpu", &[DeviceKind::Cuda])
            .version("t_smp", &[DeviceKind::Smp])
            .register();
        let (applied, skipped) = rt2.load_hints(&text).unwrap();
        assert_eq!((applied, skipped), (1, 0));
        assert!(rt2.load_hints("garbage line").is_err());
    }

    #[test]
    fn save_hints_is_none_for_baselines() {
        let rt = sim_runtime();
        assert!(rt.save_hints().is_none());
    }

    #[test]
    fn versioning_accessor_matches_policy() {
        let rt = sim_runtime();
        assert!(rt.versioning().is_none());
        let rt2 = Runtime::simulated(
            RuntimeConfig::default(),
            PlatformConfig::minotauro(1, 1),
        );
        assert!(rt2.versioning().is_some());
    }
}
