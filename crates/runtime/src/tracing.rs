//! Engine-side glue for the unified tracer (`versa-trace`).
//!
//! Both engines hold an `Option<Arc<TraceSink>>` — `None` when tracing is
//! off, so the disabled cost is one branch per would-be event and runs
//! are byte-identical to untraced ones. The helpers here cover the parts
//! common to the engines: turning scheduler decision logging on for the
//! duration of a traced run, converting the scheduler's
//! [`Decision`](versa_core::scheduler::Decision)s into trace
//! [`DecisionRecord`]s, and stamping the run's metadata.

use crate::graph::TaskState;
use crate::Runtime;
use std::sync::Arc;
use versa_core::scheduler::{Decision, DecisionPhase};
use versa_core::WorkerInfo;
use versa_trace::{
    Bid, CandidateRecord, DecisionRecord, Phase, TraceEvent, TraceMeta, TraceSink, Ts,
    WorkerSnapRecord,
};

/// Convert one scheduler decision into the trace's record form, stamped
/// with the (virtual or wall) time the engine drained it at.
pub(crate) fn decision_record(d: &Decision, time: Ts) -> DecisionRecord {
    DecisionRecord {
        time,
        task: d.task,
        template: d.template,
        bucket: d.bucket,
        job: d.job,
        phase: match d.phase {
            DecisionPhase::Learning => Phase::Learning,
            DecisionPhase::Reliable => Phase::Reliable,
            DecisionPhase::ReliableFallback => Phase::ReliableFallback,
        },
        worker: d.assignment.worker,
        version: d.assignment.version,
        bids: d
            .bids
            .iter()
            .map(|b| Bid {
                worker: b.worker,
                version: b.version,
                busy: b.busy,
                mean: b.mean,
                transfer: b.transfer,
                finish: b.finish,
            })
            .collect(),
        candidates: d
            .candidates
            .iter()
            .map(|c| CandidateRecord {
                version: c.version,
                scheduled: c.scheduled,
                count: c.count,
                mean: c.mean,
            })
            .collect(),
        workers: d
            .workers
            .iter()
            .map(|w| WorkerSnapRecord {
                worker: w.worker,
                pressure: w.pressure,
                busy: w.busy,
                transfer: w.transfer,
                runnable: w.runnable.clone(),
            })
            .collect(),
    }
}

/// Turn on scheduler decision logging for a traced run. Returns whether
/// *this* run turned it on (and therefore owns turning it off again); a
/// caller who enabled logging beforehand keeps it, though a traced run
/// drains the records into the trace as it goes.
pub(crate) fn begin_decision_log(rt: &mut Runtime, sink: &Option<Arc<TraceSink>>) -> bool {
    if sink.is_none() {
        return false;
    }
    match rt.scheduler.as_versioning_mut() {
        Some(v) if !v.decision_logging() => {
            v.set_decision_logging(true);
            true
        }
        _ => false,
    }
}

/// Undo [`begin_decision_log`] at the end of the run.
pub(crate) fn end_decision_log(rt: &mut Runtime, enabled_here: bool) {
    if enabled_here {
        if let Some(v) = rt.scheduler.as_versioning_mut() {
            v.set_decision_logging(false);
        }
    }
}

/// Move any decisions the scheduler logged since the last drain into the
/// trace's coordinator lane, stamped `now`.
pub(crate) fn drain_decisions(rt: &mut Runtime, sink: &Option<Arc<TraceSink>>, now: Ts) {
    let Some(sink) = sink else { return };
    let Some(v) = rt.scheduler.as_versioning_mut() else { return };
    if !v.decision_logging() {
        return;
    }
    let lane = sink.coordinator();
    for d in v.drain_decisions() {
        sink.record(lane, TraceEvent::Decision(decision_record(&d, now)));
    }
}

/// Record `TaskCreated` for every not-yet-finished task, so each wave's
/// trace is self-contained (a wave re-announces tasks pooled by an
/// earlier one).
pub(crate) fn record_live_created(rt: &Runtime, sink: &Option<Arc<TraceSink>>, now: Ts) {
    let Some(sink) = sink else { return };
    let lane = sink.coordinator();
    for node in rt.graph.nodes() {
        if node.state != TaskState::Done {
            sink.record(
                lane,
                TraceEvent::TaskCreated {
                    time: now,
                    task: node.instance.id,
                    template: node.instance.template,
                },
            );
        }
    }
    // Tasks already pooled from a previous wave are ready *now*.
    for &tid in &rt.pending {
        sink.record(lane, TraceEvent::TaskReady { time: now, task: tid });
    }
}

/// The run's trace metadata (worker + template name tables).
pub(crate) fn trace_meta(rt: &Runtime, engine: &str) -> TraceMeta {
    let infos: Vec<WorkerInfo> = rt.workers.iter().map(|w| w.info).collect();
    let mut meta = TraceMeta::new(engine, &infos, &rt.templates);
    meta.lambda = rt.scheduler.as_versioning().map(|v| v.config().lambda);
    for w in &mut meta.workers {
        w.node = rt.node_of_worker(w.id);
    }
    meta
}
