//! Region-based dependence analysis and task-graph bookkeeping.
//!
//! OmpSs integrates the StarSs dependence model (paper §III): `input`,
//! `output` and `inout` clauses over address ranges order tasks. The
//! runtime computes, per submitted task, the set of earlier tasks it must
//! wait for:
//!
//! * a **read** depends on every previous writer of an overlapping range
//!   (flow dependence);
//! * a **write** additionally depends on every previous reader of an
//!   overlapping range since that write (anti dependence) and on previous
//!   writers (output dependence) — this runtime does not rename, so WAR
//!   and WAW must serialize.

use std::collections::{HashMap, VecDeque};
use versa_core::{Assignment, TaskId, TaskInstance, WorkerId};
use versa_mem::{DataId, Region};

/// Lifecycle of a task inside the graph.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TaskState {
    /// Waiting for dependencies.
    Pending,
    /// All dependencies satisfied; waiting for (or holding) an assignment.
    Ready,
    /// Currently executing on a worker.
    Running,
    /// Finished.
    Done,
}

/// One node of the task graph.
#[derive(Debug)]
pub struct TaskNode {
    /// The task instance (template, accesses, data set size).
    pub instance: TaskInstance,
    /// Current lifecycle state.
    pub state: TaskState,
    /// Worker/version assignment, once scheduled.
    pub assignment: Option<Assignment>,
    /// Worker that executed the most recently *finished* producer of one
    /// of this task's inputs (the dependency-chain hint).
    pub chain_hint: Option<WorkerId>,
    successors: Vec<TaskId>,
    remaining_deps: usize,
}

impl TaskNode {
    /// Tasks that depend on this one.
    pub fn successors(&self) -> &[TaskId] {
        &self.successors
    }

    /// Unsatisfied dependency count.
    pub fn remaining_deps(&self) -> usize {
        self.remaining_deps
    }
}

#[derive(Default, Debug)]
struct RegionLog {
    /// Live writers of ranges of one allocation.
    writers: Vec<(Region, TaskId)>,
    /// Readers since those writes.
    readers: Vec<(Region, TaskId)>,
}

/// The dynamic task graph: nodes, dependence edges, and the ready frontier.
///
/// Node storage is a sliding window: a long-running multi-job service
/// recycles storage by pruning the completed prefix
/// ([`TaskGraph::prune_done_prefix`]), so steady-state admission costs
/// O(live window), not O(tasks ever submitted). Task ids keep counting
/// up — `base` maps an id to its slot in the window.
#[derive(Default, Debug)]
pub struct TaskGraph {
    nodes: VecDeque<TaskNode>,
    /// Id of the first node still stored; everything below is pruned
    /// (and was `Done` when it went).
    base: usize,
    logs: HashMap<DataId, RegionLog>,
    newly_ready: Vec<TaskId>,
    live: usize,
}

impl TaskGraph {
    /// Empty graph.
    pub fn new() -> TaskGraph {
        TaskGraph::default()
    }

    /// Number of tasks ever submitted (including pruned ones — the next
    /// task id, never recycled).
    pub fn len(&self) -> usize {
        self.base + self.nodes.len()
    }

    /// Whether no tasks were ever submitted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of submitted-but-unfinished tasks.
    pub fn live_tasks(&self) -> usize {
        self.live
    }

    /// Window slot of a task id.
    ///
    /// # Panics
    /// Panics when the task was already pruned from the window.
    fn idx(&self, id: TaskId) -> usize {
        id.index()
            .checked_sub(self.base)
            .unwrap_or_else(|| panic!("{id:?} was pruned from the graph (base {})", self.base))
    }

    /// Immutable node access.
    ///
    /// # Panics
    /// Panics on an unknown or pruned id.
    pub fn node(&self, id: TaskId) -> &TaskNode {
        &self.nodes[self.idx(id)]
    }

    /// Mutable node access (for engines storing assignments).
    pub fn node_mut(&mut self, id: TaskId) -> &mut TaskNode {
        let i = self.idx(id);
        &mut self.nodes[i]
    }

    /// Whether a task finished — pruned tasks count as done (only `Done`
    /// tasks are ever pruned).
    pub fn is_done(&self, id: TaskId) -> bool {
        match id.index().checked_sub(self.base) {
            None => true,
            Some(i) => self.nodes[i].state == TaskState::Done,
        }
    }

    /// Drop completed tasks from the front of the window, up to (not
    /// including) `before` — typically the earliest task id any
    /// still-active job owns. Returns how many nodes were recycled.
    /// Stops at the first unfinished task, so the window stays dense.
    pub fn prune_done_prefix(&mut self, before: TaskId) -> usize {
        let mut pruned = 0;
        while self.base < before.index()
            && self.nodes.front().is_some_and(|n| n.state == TaskState::Done)
        {
            self.nodes.pop_front();
            self.base += 1;
            pruned += 1;
        }
        pruned
    }

    /// Forget the dependence log of an allocation. Sound only once no
    /// unfinished task references it (the [`Runtime::try_free`] gate) —
    /// fresh `DataId`s are never recycled, so a freed allocation's log
    /// can never order future tasks.
    ///
    /// [`Runtime::try_free`]: crate::Runtime::try_free
    pub fn forget_data(&mut self, data: DataId) {
        self.logs.remove(&data);
    }

    /// Submit a task: compute its dependence edges from the access log
    /// and enqueue it in the ready frontier if it has none.
    ///
    /// Returns the new task's id (dense, submission order).
    pub fn submit(&mut self, instance: TaskInstance) -> TaskId {
        let id = TaskId(self.len() as u64);
        assert_eq!(instance.id, id, "task instance id must match submission order");

        // Gather dependencies (deduplicated, only on unfinished tasks).
        let mut deps: Vec<TaskId> = Vec::new();
        for (region, mode) in &instance.accesses {
            let log = self.logs.entry(region.data).or_default();
            for (wr, writer) in &log.writers {
                if wr.overlaps(region) && !deps.contains(writer) {
                    deps.push(*writer);
                }
            }
            if mode.writes() {
                for (rr, reader) in &log.readers {
                    if rr.overlaps(region) && !deps.contains(reader) {
                        deps.push(*reader);
                    }
                }
            }
        }
        deps.retain(|d| !self.is_done(*d));

        // Update the access logs.
        for (region, mode) in &instance.accesses {
            let log = self.logs.entry(region.data).or_default();
            if mode.writes() {
                // This write supersedes fully-covered earlier accesses;
                // keeping partially-covered ones is conservative but
                // correct (extra edges only).
                log.writers.retain(|(r, _)| !region.contains(r));
                log.readers.retain(|(r, _)| !region.contains(r));
                log.writers.push((*region, id));
            } else {
                log.readers.push((*region, id));
            }
        }

        let remaining = deps.len();
        for d in &deps {
            let i = self.idx(*d);
            self.nodes[i].successors.push(id);
        }
        self.nodes.push_back(TaskNode {
            instance,
            state: if remaining == 0 { TaskState::Ready } else { TaskState::Pending },
            assignment: None,
            chain_hint: None,
            successors: Vec::new(),
            remaining_deps: remaining,
        });
        self.live += 1;
        if remaining == 0 {
            self.newly_ready.push(id);
        }
        id
    }

    /// Drain tasks that became ready since the last call (submission /
    /// completion order — deterministic).
    pub fn take_newly_ready(&mut self) -> Vec<TaskId> {
        std::mem::take(&mut self.newly_ready)
    }

    /// Record that a task started executing.
    ///
    /// # Panics
    /// Panics unless the task was `Ready`.
    pub fn mark_running(&mut self, id: TaskId) {
        let node = self.node_mut(id);
        assert_eq!(node.state, TaskState::Ready, "{id:?} must be ready to run");
        node.state = TaskState::Running;
    }

    /// Record a completed execution: successors lose a dependency and the
    /// ones reaching zero enter the ready frontier with their chain hint
    /// set to `worker`.
    ///
    /// # Panics
    /// Panics unless the task was `Running`.
    pub fn complete(&mut self, id: TaskId, worker: WorkerId) {
        let i = self.idx(id);
        let node = &mut self.nodes[i];
        assert_eq!(node.state, TaskState::Running, "{id:?} must be running to complete");
        node.state = TaskState::Done;
        self.live -= 1;
        let successors = std::mem::take(&mut self.nodes[i].successors);
        for s in &successors {
            let si = self.idx(*s);
            let succ = &mut self.nodes[si];
            succ.remaining_deps -= 1;
            succ.chain_hint = Some(worker);
            if succ.remaining_deps == 0 {
                succ.state = TaskState::Ready;
                self.newly_ready.push(*s);
            }
        }
        self.nodes[i].successors = successors;
    }

    /// Return a failed task to the ready frontier for reassignment: the
    /// reverse of [`TaskGraph::mark_running`]. The task stays live, its
    /// stale assignment is cleared, and successors are untouched (they
    /// were never released).
    ///
    /// # Panics
    /// Panics unless the task was `Running`.
    pub fn requeue(&mut self, id: TaskId) {
        let node = self.node_mut(id);
        assert_eq!(node.state, TaskState::Running, "{id:?} must be running to requeue");
        node.state = TaskState::Ready;
        node.assignment = None;
        self.newly_ready.push(id);
    }

    /// Whether every submitted task has finished.
    pub fn all_done(&self) -> bool {
        self.live == 0
    }

    /// Number of unfinished tasks (pending, ready, or running) with an
    /// access clause over `data` — the per-allocation liveness check
    /// behind [`Runtime::free`](crate::Runtime::free) in a multi-job
    /// setting, where the graph as a whole may never be quiescent.
    pub fn live_users(&self, data: DataId) -> usize {
        if self.live == 0 {
            return 0;
        }
        self.nodes
            .iter()
            .filter(|n| {
                n.state != TaskState::Done
                    && n.instance.accesses.iter().any(|(r, _)| r.data == data)
            })
            .count()
    }

    /// Iterate over all nodes (for reports).
    pub fn nodes(&self) -> impl Iterator<Item = &TaskNode> {
        self.nodes.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use versa_core::TemplateId;
    use versa_mem::AccessMode;

    fn instance(id: u64, accesses: Vec<(Region, AccessMode)>) -> TaskInstance {
        let size = TaskInstance::data_set_size_of(&accesses, |_| 64);
        TaskInstance { id: TaskId(id), template: TemplateId(0), accesses, data_set_size: size, job: None }
    }

    fn whole(d: u32) -> Region {
        Region::whole(DataId(d), 64)
    }

    #[test]
    fn independent_tasks_are_immediately_ready() {
        let mut g = TaskGraph::new();
        let a = g.submit(instance(0, vec![(whole(0), AccessMode::Out)]));
        let b = g.submit(instance(1, vec![(whole(1), AccessMode::Out)]));
        assert_eq!(g.take_newly_ready(), vec![a, b]);
        assert_eq!(g.live_tasks(), 2);
    }

    #[test]
    fn flow_dependence_read_after_write() {
        let mut g = TaskGraph::new();
        let w = g.submit(instance(0, vec![(whole(0), AccessMode::Out)]));
        let r = g.submit(instance(1, vec![(whole(0), AccessMode::In)]));
        assert_eq!(g.take_newly_ready(), vec![w]);
        assert_eq!(g.node(r).remaining_deps(), 1);
        g.mark_running(w);
        g.complete(w, WorkerId(3));
        assert_eq!(g.take_newly_ready(), vec![r]);
        assert_eq!(g.node(r).chain_hint, Some(WorkerId(3)));
    }

    #[test]
    fn concurrent_readers_do_not_depend_on_each_other() {
        let mut g = TaskGraph::new();
        let w = g.submit(instance(0, vec![(whole(0), AccessMode::Out)]));
        let r1 = g.submit(instance(1, vec![(whole(0), AccessMode::In)]));
        let r2 = g.submit(instance(2, vec![(whole(0), AccessMode::In)]));
        g.take_newly_ready();
        g.mark_running(w);
        g.complete(w, WorkerId(0));
        // Both readers become ready together.
        assert_eq!(g.take_newly_ready(), vec![r1, r2]);
    }

    #[test]
    fn anti_dependence_write_after_read() {
        let mut g = TaskGraph::new();
        let w0 = g.submit(instance(0, vec![(whole(0), AccessMode::Out)]));
        let r = g.submit(instance(1, vec![(whole(0), AccessMode::In)]));
        let w1 = g.submit(instance(2, vec![(whole(0), AccessMode::Out)]));
        // w1 must wait for the reader (and transitively the first writer).
        assert!(g.node(w1).remaining_deps() >= 1);
        g.take_newly_ready();
        g.mark_running(w0);
        g.complete(w0, WorkerId(0));
        assert_eq!(g.take_newly_ready(), vec![r]);
        g.mark_running(r);
        g.complete(r, WorkerId(1));
        assert_eq!(g.take_newly_ready(), vec![w1]);
    }

    #[test]
    fn output_dependence_write_after_write() {
        let mut g = TaskGraph::new();
        let w0 = g.submit(instance(0, vec![(whole(0), AccessMode::Out)]));
        let w1 = g.submit(instance(1, vec![(whole(0), AccessMode::Out)]));
        assert_eq!(g.node(w1).remaining_deps(), 1);
        g.take_newly_ready();
        g.mark_running(w0);
        g.complete(w0, WorkerId(0));
        assert_eq!(g.take_newly_ready(), vec![w1]);
    }

    #[test]
    fn inout_chain_serializes() {
        // The matmul pattern: C updated by a chain of inout tasks.
        let mut g = TaskGraph::new();
        let t0 = g.submit(instance(0, vec![(whole(0), AccessMode::InOut)]));
        let t1 = g.submit(instance(1, vec![(whole(0), AccessMode::InOut)]));
        let t2 = g.submit(instance(2, vec![(whole(0), AccessMode::InOut)]));
        assert_eq!(g.take_newly_ready(), vec![t0]);
        g.mark_running(t0);
        g.complete(t0, WorkerId(0));
        assert_eq!(g.take_newly_ready(), vec![t1]);
        g.mark_running(t1);
        g.complete(t1, WorkerId(0));
        assert_eq!(g.take_newly_ready(), vec![t2]);
    }

    #[test]
    fn disjoint_ranges_do_not_conflict() {
        let mut g = TaskGraph::new();
        let a = g.submit(instance(0, vec![(Region::range(DataId(0), 0, 32), AccessMode::Out)]));
        let b = g.submit(instance(1, vec![(Region::range(DataId(0), 32, 32), AccessMode::Out)]));
        assert_eq!(g.take_newly_ready(), vec![a, b]);
    }

    #[test]
    fn overlapping_ranges_conflict() {
        let mut g = TaskGraph::new();
        let _a = g.submit(instance(0, vec![(Region::range(DataId(0), 0, 48), AccessMode::Out)]));
        let b = g.submit(instance(1, vec![(Region::range(DataId(0), 32, 32), AccessMode::In)]));
        assert_eq!(g.node(b).remaining_deps(), 1);
    }

    #[test]
    fn duplicate_edges_are_collapsed() {
        // A task reading two regions produced by the same writer gets one
        // dependency, not two.
        let mut g = TaskGraph::new();
        let w = g.submit(instance(
            0,
            vec![(whole(0), AccessMode::Out), (whole(1), AccessMode::Out)],
        ));
        let r = g.submit(instance(
            1,
            vec![(whole(0), AccessMode::In), (whole(1), AccessMode::In)],
        ));
        assert_eq!(g.node(r).remaining_deps(), 1);
        assert_eq!(g.node(w).successors(), &[r]);
    }

    #[test]
    fn dependencies_on_done_tasks_are_skipped() {
        let mut g = TaskGraph::new();
        let w = g.submit(instance(0, vec![(whole(0), AccessMode::Out)]));
        g.take_newly_ready();
        g.mark_running(w);
        g.complete(w, WorkerId(0));
        // Submitted after the writer finished: ready immediately.
        let r = g.submit(instance(1, vec![(whole(0), AccessMode::In)]));
        assert_eq!(g.take_newly_ready(), vec![r]);
    }

    #[test]
    fn full_overwrite_prunes_the_log() {
        let mut g = TaskGraph::new();
        for i in 0..100 {
            g.submit(instance(i, vec![(whole(0), AccessMode::Out)]));
        }
        // The log keeps only the latest whole-region writer.
        assert_eq!(g.logs[&DataId(0)].writers.len(), 1);
    }

    #[test]
    fn all_done_tracks_lifecycle() {
        let mut g = TaskGraph::new();
        assert!(g.all_done(), "empty graph is trivially done");
        let a = g.submit(instance(0, vec![(whole(0), AccessMode::Out)]));
        assert!(!g.all_done());
        g.take_newly_ready();
        g.mark_running(a);
        g.complete(a, WorkerId(0));
        assert!(g.all_done());
    }

    #[test]
    fn requeue_returns_running_task_to_frontier() {
        let mut g = TaskGraph::new();
        let a = g.submit(instance(0, vec![(whole(0), AccessMode::Out)]));
        let b = g.submit(instance(1, vec![(whole(0), AccessMode::In)]));
        g.take_newly_ready();
        g.mark_running(a);
        g.requeue(a);
        assert_eq!(g.node(a).state, TaskState::Ready);
        assert!(g.node(a).assignment.is_none());
        assert_eq!(g.take_newly_ready(), vec![a]);
        assert_eq!(g.live_tasks(), 2, "a failed task is still live");
        // Successors were never released.
        assert_eq!(g.node(b).remaining_deps(), 1);
        // The retry can run and complete normally.
        g.mark_running(a);
        g.complete(a, WorkerId(0));
        assert_eq!(g.take_newly_ready(), vec![b]);
    }

    #[test]
    fn pruned_prefix_recycles_storage_and_keeps_ids_counting() {
        let mut g = TaskGraph::new();
        for i in 0..10 {
            g.submit(instance(i, vec![(whole(i as u32), AccessMode::Out)]));
        }
        for i in 0..6 {
            g.mark_running(TaskId(i));
            g.complete(TaskId(i), WorkerId(0));
        }
        // Prune only below the requested bound, even though more is done.
        assert_eq!(g.prune_done_prefix(TaskId(4)), 4);
        assert_eq!(g.len(), 10, "ids keep counting past pruned tasks");
        assert!(g.is_done(TaskId(0)), "pruned tasks count as done");
        assert!(g.is_done(TaskId(5)));
        assert!(!g.is_done(TaskId(7)));
        // The rest of the done prefix goes once the bound allows it.
        assert_eq!(g.prune_done_prefix(TaskId(10)), 2);
        // New submissions continue in order and see the right deps.
        let t = g.submit(instance(10, vec![(whole(7), AccessMode::In)]));
        assert_eq!(t, TaskId(10));
        assert_eq!(g.node(t).remaining_deps(), 1, "depends on live writer 7");
    }

    #[test]
    fn pruning_stops_at_the_first_live_task() {
        let mut g = TaskGraph::new();
        for i in 0..4 {
            g.submit(instance(i, vec![(whole(i as u32), AccessMode::Out)]));
        }
        g.mark_running(TaskId(0));
        g.complete(TaskId(0), WorkerId(0));
        // Task 1 is still ready (not done): nothing past it can go.
        g.mark_running(TaskId(2));
        g.complete(TaskId(2), WorkerId(0));
        assert_eq!(g.prune_done_prefix(TaskId(4)), 1, "only the dense done prefix");
        assert_eq!(g.live_tasks(), 2);
        // Task 2's node is still addressable behind the live task 1.
        assert_eq!(g.node(TaskId(2)).state, TaskState::Done);
    }

    #[test]
    #[should_panic(expected = "was pruned")]
    fn pruned_nodes_are_not_addressable() {
        let mut g = TaskGraph::new();
        g.submit(instance(0, vec![(whole(0), AccessMode::Out)]));
        g.mark_running(TaskId(0));
        g.complete(TaskId(0), WorkerId(0));
        g.prune_done_prefix(TaskId(1));
        let _ = g.node(TaskId(0));
    }

    #[test]
    fn deps_on_pruned_writers_are_skipped() {
        let mut g = TaskGraph::new();
        g.submit(instance(0, vec![(whole(0), AccessMode::Out)]));
        g.take_newly_ready();
        g.mark_running(TaskId(0));
        g.complete(TaskId(0), WorkerId(0));
        g.prune_done_prefix(TaskId(1));
        // The log still names task 0 as writer of data 0; the dependence
        // is dropped because pruned tasks are done by construction.
        let r = g.submit(instance(1, vec![(whole(0), AccessMode::In)]));
        assert_eq!(g.node(r).remaining_deps(), 0);
        assert_eq!(g.take_newly_ready(), vec![r]);
    }

    #[test]
    fn forget_data_drops_the_log() {
        let mut g = TaskGraph::new();
        g.submit(instance(0, vec![(whole(0), AccessMode::Out)]));
        g.mark_running(TaskId(0));
        g.complete(TaskId(0), WorkerId(0));
        assert!(g.logs.contains_key(&DataId(0)));
        g.forget_data(DataId(0));
        assert!(!g.logs.contains_key(&DataId(0)));
    }

    #[test]
    #[should_panic(expected = "must be ready")]
    fn cannot_run_pending_task() {
        let mut g = TaskGraph::new();
        let _w = g.submit(instance(0, vec![(whole(0), AccessMode::Out)]));
        let r = g.submit(instance(1, vec![(whole(0), AccessMode::In)]));
        g.mark_running(r);
    }
}
