//! Persistent lane pool for emulated-GPU workers.
//!
//! The seed's parallel kernels opened a `std::thread::scope` — i.e. spawned
//! and joined OS threads — on *every* kernel invocation. A `LanePool` is
//! created once per emulated-GPU worker and lives for the whole run: its
//! lane threads park on a condvar between batches, so executing a
//! multi-lane kernel costs a wake-up instead of `lanes − 1` `thread::spawn`
//! calls per task.
//!
//! The pool implements [`LaneExec`], the executor abstraction the kernels
//! crate parallelizes over, so kernels are oblivious to whether their
//! lanes are pooled ([`LanePool`]), ad-hoc (`ScopedExec`) or inline
//! (`SerialExec`).
//!
//! # Why the lifetime erasure is sound
//! [`LaneExec::run_batch`] accepts jobs borrowing caller state (`'scope`).
//! Queueing them on long-lived threads requires erasing that lifetime to
//! `'static`, which is sound only because `run_batch` does not return
//! until every queued job has run to completion: the calling frame — and
//! everything the jobs borrow — strictly outlives every execution. The
//! caller participates in draining the queue, and waits on a second
//! condvar until the in-flight count reaches zero.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use versa_kernels::exec::LaneExec;

type Job = Box<dyn FnOnce() + Send + 'static>;

#[derive(Default)]
struct State {
    /// FIFO so `MC`-granular kernel bands execute in submission order —
    /// adjacent bands stream adjacent rows of `A`/`C`, which keeps the
    /// shared cache warm when lanes pick up consecutive bands.
    queue: VecDeque<Job>,
    /// Jobs currently executing on some thread (pool lane or caller).
    active: usize,
    /// Panic messages captured from jobs; re-thrown by the draining caller.
    panics: Vec<String>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Signaled when the queue gains jobs (or shutdown is requested).
    work: Condvar,
    /// Signaled when the last in-flight job of a batch finishes.
    done: Condvar,
}

/// A fixed set of persistent lane threads executing kernel job batches.
///
/// Constructed once per emulated-GPU worker with the device's lane count;
/// every subsequent kernel batch reuses the same OS threads.
pub struct LanePool {
    shared: Arc<Shared>,
    lanes: usize,
    workers: Vec<JoinHandle<()>>,
}

impl LanePool {
    /// Build a pool presenting `lanes` lanes (clamped to ≥ 1). The calling
    /// thread participates in every batch, so only `lanes − 1` OS threads
    /// are spawned — these are the only spawns the pool ever performs.
    pub fn new(lanes: usize) -> LanePool {
        let lanes = lanes.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State::default()),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let workers = (1..lanes)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("lane-{i}"))
                    .spawn(move || lane_loop(&shared))
                    .expect("spawn lane thread")
            })
            .collect();
        LanePool { shared, lanes, workers }
    }

    /// Number of OS threads the pool owns (`lanes − 1`; the caller is the
    /// remaining lane). Exposed so tests can assert the pool's thread
    /// count never grows with the number of batches executed.
    pub fn worker_threads(&self) -> usize {
        self.workers.len()
    }

    /// Run one erased job, capturing any panic message into the state.
    fn run_job(&self, job: Job) {
        run_captured(&self.shared, job);
    }
}

/// Execute `job`, appending its panic message to `shared` if it unwinds.
fn run_captured(shared: &Shared, job: Job) {
    let result = catch_unwind(AssertUnwindSafe(job));
    let mut state = shared.state.lock().unwrap();
    if let Err(payload) = result {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "lane job panicked".to_string());
        state.panics.push(msg);
    }
    state.active -= 1;
    if state.active == 0 && state.queue.is_empty() {
        shared.done.notify_all();
    }
    drop(state);
}

fn lane_loop(shared: &Shared) {
    loop {
        let job = {
            let mut state = shared.state.lock().unwrap();
            loop {
                if let Some(job) = state.queue.pop_front() {
                    state.active += 1;
                    break job;
                }
                if state.shutdown {
                    return;
                }
                state = shared.work.wait(state).unwrap();
            }
        };
        run_captured(shared, job);
    }
}

impl LaneExec for LanePool {
    fn lanes(&self) -> usize {
        self.lanes
    }

    fn run_batch<'scope>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 'scope>>) {
        if jobs.is_empty() {
            return;
        }
        // Erase the borrow lifetime; see the module docs for why this is
        // sound (the batch is fully drained before this function returns).
        let jobs: Vec<Job> = jobs
            .into_iter()
            .map(|job| unsafe {
                std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Job>(job)
            })
            .collect();
        {
            let mut state = self.shared.state.lock().unwrap();
            state.queue.extend(jobs);
            self.shared.work.notify_all();
        }
        // Participate as the last lane, then wait out the stragglers.
        let panics = loop {
            let mut state = self.shared.state.lock().unwrap();
            if let Some(job) = state.queue.pop_front() {
                state.active += 1;
                drop(state);
                self.run_job(job);
            } else if state.active > 0 {
                let _unused = self.shared.done.wait(state).unwrap();
            } else {
                break std::mem::take(&mut state.panics);
            }
        };
        if let Some(first) = panics.into_iter().next() {
            panic!("{first}");
        }
    }
}

impl Drop for LanePool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().unwrap();
            state.shutdown = true;
            self.shared.work.notify_all();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::thread::ThreadId;

    fn batch_sum(pool: &LanePool, jobs: usize) -> usize {
        let hits = AtomicUsize::new(0);
        let batch: Vec<Box<dyn FnOnce() + Send + '_>> = (0..jobs)
            .map(|i| {
                let hits = &hits;
                Box::new(move || {
                    hits.fetch_add(i + 1, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run_batch(batch);
        hits.load(Ordering::Relaxed)
    }

    #[test]
    fn runs_every_job_in_the_batch() {
        let pool = LanePool::new(4);
        assert_eq!(pool.lanes(), 4);
        assert_eq!(pool.worker_threads(), 3);
        assert_eq!(batch_sum(&pool, 10), 55);
        assert_eq!(batch_sum(&pool, 1), 1);
        assert_eq!(batch_sum(&pool, 0), 0);
    }

    #[test]
    fn single_lane_pool_spawns_nothing() {
        let pool = LanePool::new(1);
        assert_eq!(pool.worker_threads(), 0);
        assert_eq!(batch_sum(&pool, 5), 15);
        assert_eq!(LanePool::new(0).lanes(), 1);
    }

    #[test]
    fn reuses_the_same_threads_across_batches() {
        let pool = LanePool::new(3);
        let seen: Mutex<HashSet<ThreadId>> = Mutex::new(HashSet::new());
        for _ in 0..50 {
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..6)
                .map(|_| {
                    let seen = &seen;
                    Box::new(move || {
                        seen.lock().unwrap().insert(std::thread::current().id());
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.run_batch(jobs);
        }
        // 300 jobs, but only the caller + the pool's fixed worker threads
        // may ever appear: the pool spawns nothing per batch.
        let ids = seen.lock().unwrap();
        assert!(ids.len() <= pool.lanes());
        assert!(ids.contains(&std::thread::current().id()) || pool.worker_threads() > 0);
    }

    #[test]
    fn jobs_may_borrow_mutable_disjoint_state() {
        let pool = LanePool::new(2);
        let mut data = vec![0u8; 6];
        let (lo, hi) = data.split_at_mut(3);
        pool.run_batch(vec![
            Box::new(move || lo.fill(1)),
            Box::new(move || hi.fill(2)),
        ]);
        assert_eq!(data, [1, 1, 1, 2, 2, 2]);
    }

    #[test]
    #[should_panic(expected = "lane exploded")]
    fn propagates_job_panics_after_draining() {
        let pool = LanePool::new(2);
        let survivor = AtomicUsize::new(0);
        pool.run_batch(vec![
            Box::new(|| panic!("lane exploded")),
            Box::new(|| {
                survivor.fetch_add(1, Ordering::Relaxed);
            }),
        ]);
    }

    #[test]
    fn pool_survives_a_panicked_batch() {
        let pool = LanePool::new(2);
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run_batch(vec![Box::new(|| panic!("first batch dies"))]);
        }));
        assert!(outcome.is_err());
        // Lanes are still alive and the panic buffer was drained.
        assert_eq!(batch_sum(&pool, 4), 10);
    }

    #[test]
    fn drive_a_real_kernel_through_the_pool() {
        use versa_kernels::gemm::{dgemm_blocked, dgemm_parallel_on};
        use versa_kernels::verify::{assert_close_f64, random_matrix_f64};
        let pool = LanePool::new(4);
        let n = 160;
        let a = random_matrix_f64(n, 1);
        let b = random_matrix_f64(n, 2);
        let mut c1 = random_matrix_f64(n, 3);
        let mut c2 = c1.clone();
        dgemm_blocked(&a, &b, &mut c1, n);
        dgemm_parallel_on(&pool, &a, &b, &mut c2, n);
        assert_close_f64(&c1, &c2, 1e-12);
    }
}
