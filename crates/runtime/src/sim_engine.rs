//! Virtual-time execution engine.
//!
//! Drives the task graph and scheduler over the simulated heterogeneous
//! node of `versa-sim`: per-worker FIFO queues, kernel durations from the
//! cost table (+ seeded noise), transfers on finite-bandwidth links with
//! transfer/compute overlap and data prefetch. The scheduler only ever
//! observes assignments and measured durations, never the cost table.
//!
//! Failures: the platform's [`FaultPlan`](versa_sim::FaultPlan) may mark
//! task executions as failed. A failed attempt occupies its worker for
//! the sampled duration, produces nothing, is reported to the scheduler
//! via [`Scheduler::task_failed`](versa_core::Scheduler::task_failed),
//! and re-enters the ready pool — until the task exhausts
//! [`RuntimeConfig::max_task_retries`](crate::RuntimeConfig), which
//! aborts the run with a [`RunError`] carrying the partial report.

use crate::assign::drain_pool;
use crate::report::{FailureReport, RunError, TaskFailure, WorkerTransferStats};
use crate::runtime::EngineKind;
use crate::{RunReport, Runtime};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Duration;
use versa_core::{FailureKind, TaskId, TemplateId, VersionId, WorkerId};
use versa_mem::Transfer;
use versa_sim::{EventQueue, FaultInjector, NodeFaultKind, NoiseModel, SimTime, TransferEngine};
use versa_trace::{TraceEvent, TraceSink, Ts};

/// Virtual-time heartbeat timeout: how much later than its fault time a
/// [`NodeFaultKind::HeartbeatTimeout`] loss is *detected* (the simulated
/// analogue of `versa-net`'s reaper declaring a silent node dead).
/// Completions that land in that window still count, exactly like an
/// `ExecOk` frame racing the reaper on a real cluster.
const SIM_HEARTBEAT_TIMEOUT: Duration = Duration::from_millis(2);

struct SimState {
    xfer: TransferEngine,
    noise: NoiseModel,
    events: EventQueue<(WorkerId, TaskId)>,
    /// Dispatch budget of this wave (`u64::MAX` = unbounded).
    budget: u64,
    /// Tasks dispatched so far this wave.
    dispatched: u64,
    /// Per-GPU LRU residency trackers when device memory is finite.
    caches: Option<Vec<versa_mem::DeviceCache>>,
    /// Per-worker kernel-duration multipliers (mixed-generation GPUs).
    speed: Vec<f64>,
    /// Completion time of prefetch transfers per task.
    deadlines: HashMap<TaskId, SimTime>,
    /// Sampled compute duration of in-flight tasks.
    durations: HashMap<TaskId, Duration>,
    /// Injected-fault decisions, made at task start for determinism.
    injector: FaultInjector,
    /// In-flight tasks whose current attempt will fail on completion.
    doomed: HashSet<TaskId>,
    /// Scheduled node losses still to fire: `(detection time, node)`,
    /// sorted by time. Detection lags the fault by the heartbeat
    /// timeout for [`NodeFaultKind::HeartbeatTimeout`] rules.
    node_faults: Vec<(SimTime, u16)>,
    /// Tasks that were running on a node when it was lost: their queued
    /// completion events are reinterpreted as `NodeLost` failures.
    lost: HashSet<TaskId>,
    /// TaskStart stamps of in-flight tasks. A task may start *later*
    /// than the current event-loop time (it waits on transfers), so the
    /// `NodeLost` trace event must be stamped no earlier than any start
    /// already recorded on that node.
    starts: HashMap<TaskId, SimTime>,
    /// Failed attempts per task so far.
    attempts: HashMap<TaskId, u32>,
    failures: FailureReport,
    /// The unified tracer (`None` = tracing off; see `crate::tracing`).
    /// Worker events go to lane `worker.index()`, everything the
    /// coordinator does to the coordinator lane.
    sink: Option<Arc<TraceSink>>,
    /// Whether this run turned scheduler decision logging on (and must
    /// turn it off again).
    log_here: bool,
    version_counts: HashMap<(TemplateId, VersionId), u64>,
    worker_counts: Vec<u64>,
    worker_busy: Vec<Duration>,
    /// Per-worker copy-in accounting (virtual time). `overlap_time`
    /// stays zero here: the simulator models overlap via link/engine
    /// occupancy rather than measuring wall-clock intersections.
    worker_transfers: Vec<WorkerTransferStats>,
    tasks_executed: u64,
}

/// Run tasks in virtual time: all of them (`max_dispatch = None`), or at
/// most a bounded wave of dispatches, leaving the rest pooled in the
/// runtime for the next wave.
pub(crate) fn run_sim(rt: &mut Runtime, max_dispatch: Option<u64>) -> Result<RunReport, RunError> {
    let (platform, stored_caches) = {
        let EngineKind::Sim { platform, caches } = &mut rt.engine else {
            unreachable!("run_sim on a non-simulated runtime")
        };
        (platform.clone(), caches.take())
    };
    let mut st = SimState {
        xfer: TransferEngine::new(&platform),
        noise: NoiseModel::new(rt.config.noise_sigma, platform.seed.wrapping_add(rt.run_count)),
        events: EventQueue::new(),
        budget: max_dispatch.unwrap_or(u64::MAX),
        dispatched: 0,
        // Device residency state survives across waves/runs, so a later
        // job still sees what an earlier one left on the GPUs.
        caches: stored_caches.or_else(|| {
            platform.gpu_mem_capacity.map(|cap| {
                (0..platform.gpus).map(|_| versa_mem::DeviceCache::new(cap)).collect()
            })
        }),
        speed: rt
            .workers
            .iter()
            .map(|w| match w.info.space.device_index() {
                Some(d) => platform.gpu_speed_factor(usize::from(d)),
                None => 1.0,
            })
            .collect(),
        deadlines: HashMap::new(),
        durations: HashMap::new(),
        injector: FaultInjector::new(platform.faults.clone(), platform.seed),
        doomed: HashSet::new(),
        node_faults: {
            let mut f: Vec<(SimTime, u16)> = platform
                .faults
                .node_rules
                .iter()
                .map(|r| {
                    let detect = match r.kind {
                        NodeFaultKind::Drop => r.at,
                        NodeFaultKind::HeartbeatTimeout => r.at + SIM_HEARTBEAT_TIMEOUT,
                    };
                    (SimTime::from_duration(detect), r.node)
                })
                .collect();
            f.sort_unstable();
            f
        },
        lost: HashSet::new(),
        starts: HashMap::new(),
        attempts: HashMap::new(),
        failures: FailureReport::default(),
        sink: TraceSink::from_config(&rt.config.tracing, rt.workers.len()),
        log_here: false,
        version_counts: HashMap::new(),
        worker_counts: vec![0; rt.workers.len()],
        worker_busy: vec![Duration::ZERO; rt.workers.len()],
        worker_transfers: vec![WorkerTransferStats::default(); rt.workers.len()],
        tasks_executed: 0,
    };
    st.log_here = crate::tracing::begin_decision_log(rt, &st.sink);
    crate::tracing::record_live_created(rt, &st.sink, Ts::ZERO);

    let mut now = SimTime::ZERO;
    pump(rt, &mut st, now);
    start_idle_workers(rt, &mut st, now);

    while let Some((time, (wid, tid))) = st.events.pop() {
        now = time;
        // Node losses detected by now fire *before* the popped event is
        // interpreted: a completion from a just-lost node is a loss, not
        // a result.
        fire_node_faults(rt, &mut st, now);
        if st.lost.remove(&tid) {
            on_node_lost(rt, &mut st, now, wid, tid);
        } else if st.doomed.remove(&tid) {
            if let Some(abort) = on_failure(rt, &mut st, now, wid, tid) {
                let report = finish_report(rt, st, now.as_duration());
                return Err(RunError {
                    task: abort.0,
                    kind: FailureKind::Fault,
                    message: abort.1,
                    report: Box::new(report),
                });
            }
        } else {
            on_completion(rt, &mut st, now, wid, tid);
        }
        pump(rt, &mut st, now);
        start_idle_workers(rt, &mut st, now);
    }

    if max_dispatch.is_none() {
        assert!(
            rt.graph.all_done() && rt.pending.is_empty(),
            "simulation stalled with {} live tasks and {} pooled tasks — \
             is some template missing a compatible worker?",
            rt.graph.live_tasks(),
            rt.pending.len()
        );
    }

    // The implicit taskwait: flush device-resident data home (only once
    // everything is done — a partial wave leaves data on the devices).
    let mut end = now;
    if rt.config.flush_on_wait && rt.graph.all_done() {
        for t in rt.directory.flush_all_to_host() {
            let done = st.xfer.schedule(&t, now);
            record_transfers(&st.sink, std::slice::from_ref(&t), now, done, None);
            end = end.max(done);
        }
    }

    Ok(finish_report(rt, st, end.as_duration()))
}

/// Assemble the report from the accumulated state (complete or partial)
/// and hand persistent device-cache state back to the runtime.
fn finish_report(rt: &mut Runtime, mut st: SimState, makespan: Duration) -> RunReport {
    if let EngineKind::Sim { caches, .. } = &mut rt.engine {
        *caches = st.caches.take();
    }
    crate::tracing::end_decision_log(rt, st.log_here);
    st.failures.quarantined = rt.quarantined_versions();
    RunReport {
        scheduler: rt.scheduler.name().to_string(),
        makespan,
        tasks_executed: st.tasks_executed,
        transfers: *st.xfer.stats(),
        version_counts: st.version_counts,
        worker_task_counts: st.worker_counts,
        worker_busy: st.worker_busy,
        worker_transfers: st.worker_transfers,
        completed: rt.graph.all_done(),
        profile_table: rt
            .scheduler
            .as_versioning()
            .map(|v| v.profiles().render_table(&rt.templates)),
        trace: st.sink.take().map(|sink| sink.drain(crate::tracing::trace_meta(rt, "sim"))),
        failures: st.failures,
    }
}

/// Handle one task completion at virtual time `now`.
fn on_completion(rt: &mut Runtime, st: &mut SimState, now: SimTime, wid: WorkerId, tid: TaskId) {
    rt.workers[wid.index()].finish(tid);
    rt.graph.complete(tid, wid);

    let space = rt.workers[wid.index()].info.space;
    let assignment = rt.graph.node(tid).assignment.expect("completed task had an assignment");
    for (region, mode) in &rt.graph.node(tid).instance.accesses {
        if mode.writes() {
            st.xfer.mark_produced(region.data, space, now);
        }
    }
    st.starts.remove(&tid);
    let measured = st.durations.remove(&tid).expect("in-flight task had a sampled duration");
    rt.scheduler.task_finished(&rt.graph.node(tid).instance, assignment, measured);
    st.worker_transfers[wid.index()].compute_time += measured;

    *st.version_counts
        .entry((rt.graph.node(tid).instance.template, assignment.version))
        .or_insert(0) += 1;
    st.worker_counts[wid.index()] += 1;
    st.worker_busy[wid.index()] += measured;
    st.tasks_executed += 1;
    if let Some(sink) = &st.sink {
        sink.record(
            wid.index(),
            TraceEvent::TaskEnd {
                time: now.into(),
                task: tid,
                worker: wid,
                kernel_ns: measured.as_nanos() as u64,
            },
        );
    }
}

/// Handle one failed attempt at virtual time `now`. The worker is freed,
/// the task produces nothing and goes back to the ready frontier, and the
/// scheduler hears about the failure (quarantine accounting). Returns
/// abort info when the task has exhausted its retry budget.
fn on_failure(
    rt: &mut Runtime,
    st: &mut SimState,
    now: SimTime,
    wid: WorkerId,
    tid: TaskId,
) -> Option<(TaskId, String)> {
    rt.workers[wid.index()].finish(tid);
    st.durations.remove(&tid);
    st.deadlines.remove(&tid);
    st.starts.remove(&tid);

    let assignment = rt.graph.node(tid).assignment.expect("failed task had an assignment");
    let attempt = {
        let n = st.attempts.entry(tid).or_insert(0);
        *n += 1;
        *n
    };
    let message = format!(
        "injected fault (rule matched {:?} {:?} on {wid:?})",
        rt.templates.get(rt.graph.node(tid).instance.template).name,
        assignment.version
    );
    if let Some(sink) = &st.sink {
        sink.record(
            wid.index(),
            TraceEvent::TaskFailed {
                time: now.into(),
                task: tid,
                worker: wid,
                version: assignment.version,
                attempt,
            },
        );
    }
    st.failures.events.push(TaskFailure {
        task: tid,
        template: rt.graph.node(tid).instance.template,
        version: assignment.version,
        worker: wid,
        kind: FailureKind::Fault,
        message: message.clone(),
        attempt,
    });
    rt.scheduler.task_failed(&rt.graph.node(tid).instance, assignment, FailureKind::Fault);

    if attempt > rt.config.max_task_retries {
        return Some((tid, message));
    }
    rt.graph.requeue(tid);
    st.failures.retries += 1;
    None
}

/// Fire every scheduled node loss whose detection time has passed:
/// retire the node's workers, return their queued (never-started) tasks
/// to the pending pool silently, and mark running tasks as lost so their
/// queued completion events become [`FailureKind::NodeLost`] failures.
fn fire_node_faults(rt: &mut Runtime, st: &mut SimState, now: SimTime) {
    while let Some(&(detect, node)) = st.node_faults.first() {
        if detect > now {
            break;
        }
        st.node_faults.remove(0);
        // The NodeLost trace event must not precede any TaskStart
        // already stamped on this node — sim starts can postdate the
        // current loop time when a task waited on transfers.
        let mut stamp = detect;
        for wi in 0..rt.workers.len() {
            let wid = rt.workers[wi].info.id;
            if rt.node_of_worker(wid) != node || rt.workers[wi].is_retired() {
                continue;
            }
            rt.workers[wi].retire();
            for q in rt.workers[wi].drain_queue() {
                // Never started: re-pool without a failure record, like
                // the native coordinator re-dispatching unacknowledged
                // queue entries.
                rt.pending.push_back(q.task);
            }
            if let Some(q) = rt.workers[wi].running() {
                let tid = q.task;
                st.lost.insert(tid);
                if let Some(&s) = st.starts.get(&tid) {
                    stamp = stamp.max(s);
                }
            }
        }
        if let Some(sink) = &st.sink {
            sink.record(sink.coordinator(), TraceEvent::NodeLost { time: stamp.into(), node });
        }
    }
}

/// Handle the queued completion event of a task whose node died while it
/// ran. Mirrors the native engine's `NodeLost` path: the failure is
/// charged to the node (no version strike — the versioning scheduler
/// ignores `NodeLost`), the attempt counter advances for trace
/// coherence, but the retry *budget* is never checked, so node loss
/// alone cannot abort a run.
fn on_node_lost(rt: &mut Runtime, st: &mut SimState, now: SimTime, wid: WorkerId, tid: TaskId) {
    st.doomed.remove(&tid);
    st.durations.remove(&tid);
    st.deadlines.remove(&tid);
    st.starts.remove(&tid);
    rt.workers[wid.index()].abandon_running();

    let assignment = rt.graph.node(tid).assignment.expect("lost task had an assignment");
    let attempt = {
        let n = st.attempts.entry(tid).or_insert(0);
        *n += 1;
        *n
    };
    let message = format!("node {} lost mid-task", rt.node_of_worker(wid));
    if let Some(sink) = &st.sink {
        sink.record(
            wid.index(),
            TraceEvent::TaskFailed {
                time: now.into(),
                task: tid,
                worker: wid,
                version: assignment.version,
                attempt,
            },
        );
    }
    st.failures.events.push(TaskFailure {
        task: tid,
        template: rt.graph.node(tid).instance.template,
        version: assignment.version,
        worker: wid,
        kind: FailureKind::NodeLost,
        message,
        attempt,
    });
    rt.scheduler.task_failed(&rt.graph.node(tid).instance, assignment, FailureKind::NodeLost);
    rt.graph.requeue(tid);
    st.failures.retries += 1;
}

/// Assign newly-ready and pooled tasks; prefetch their data if enabled.
/// The pool lives in the runtime, so tasks a bounded wave could not
/// dispatch carry over to the next wave.
fn pump(rt: &mut Runtime, st: &mut SimState, now: SimTime) {
    let newly = rt.graph.take_newly_ready();
    if let Some(sink) = &st.sink {
        let lane = sink.coordinator();
        for &tid in &newly {
            sink.record(lane, TraceEvent::TaskReady { time: now.into(), task: tid });
        }
    }
    rt.pending.extend(newly);
    let remaining = st.budget - st.dispatched;
    if remaining == 0 {
        return;
    }
    if rt.config.fair_scheduling {
        rt.fair.order(&mut rt.pending, &rt.graph);
    }
    let assigned = drain_pool(
        &mut rt.pending,
        rt.scheduler.as_mut(),
        &rt.templates,
        &mut rt.workers,
        &rt.directory,
        &mut rt.graph,
        (st.budget != u64::MAX).then_some(remaining as usize),
        rt.config.batched_bids,
    );
    st.dispatched += assigned.len() as u64;
    crate::tracing::drain_decisions(rt, &st.sink, now.into());
    if rt.config.fair_scheduling {
        rt.fair.note_dispatched(&rt.graph, assigned.iter().map(|(t, _)| t));
    }
    if !rt.config.prefetch {
        return;
    }
    for (tid, a) in assigned {
        let deadline = stage_task_data(rt, st, tid, a.worker, now);
        st.deadlines.insert(tid, deadline);
    }
}

/// Resolve a task's accesses in its worker's space: evict from a full
/// device memory (writing back sole copies), then schedule the required
/// copy-ins. Returns the time by which the task's data is in place.
fn stage_task_data(
    rt: &mut Runtime,
    st: &mut SimState,
    tid: TaskId,
    worker: WorkerId,
    now: SimTime,
) -> SimTime {
    let space = rt.workers[worker.index()].info.space;
    let accesses = rt.graph.node(tid).instance.accesses.clone();
    let mut deadline = now;

    // Capacity management (finite GPU memories only): make room for the
    // task's working set before the copy-ins are planned. Remote-node
    // mirror spaces (device indices past the GPU caches) are host RAM
    // on the far side and stay unbounded — `get_mut` skips them.
    if let (Some(caches), Some(dev)) = (&mut st.caches, space.device_index()) {
        if let Some(cache) = caches.get_mut(usize::from(dev)) {
            // Pin this task's working set plus the running task's (its
            // kernel is touching that memory right now). Prefetched data of
            // merely *queued* tasks may be evicted — those tasks re-stage
            // when they start (see `start_idle_workers`), exactly like a
            // bounded prefetch window on real hardware.
            let mut pinned = Vec::with_capacity(accesses.len());
            for (region, _) in &accesses {
                cache.insert(region.data, rt.directory.bytes(region.data));
                if !pinned.contains(&region.data) {
                    pinned.push(region.data);
                }
            }
            if let Some(running) = rt.workers[worker.index()].running() {
                if running.task != tid {
                    for (region, _) in &rt.graph.node(running.task).instance.accesses {
                        if !pinned.contains(&region.data) {
                            pinned.push(region.data);
                        }
                    }
                }
            }
            for victim in cache.evict_to_capacity(&pinned) {
                if rt.directory.is_sole_copy(victim, space) {
                    let wb = rt
                        .directory
                        .flush_to_host(victim)
                        .expect("sole device copy needs a write-back");
                    let end = st.xfer.schedule(&wb, now);
                    record_transfers(&st.sink, std::slice::from_ref(&wb), now, end, None);
                    deadline = deadline.max(end);
                }
                rt.directory.invalidate(victim, space);
            }
        }
    }

    let mut end = now;
    for (region, mode) in &accesses {
        if let Some(t) = rt.directory.acquire(region.data, space, *mode) {
            // Per-transfer scheduling (same fold `schedule_all` does, so
            // virtual-time results are unchanged) lets the scheduler
            // observe each copy's modelled duration — feeding the same
            // per-space bandwidth EWMA the native engine trains — and
            // attributes the copy to the destination worker.
            let t_end = st.xfer.schedule(&t, now);
            let elapsed = t_end.as_duration().saturating_sub(now.as_duration());
            rt.scheduler.transfer_done(t.to, t.bytes, elapsed);
            let wt = &mut st.worker_transfers[worker.index()];
            wt.staged_bytes += t.bytes;
            wt.staged_count += 1;
            wt.stage_time += elapsed;
            record_transfers(&st.sink, std::slice::from_ref(&t), now, t_end, Some(worker));
            end = end.max(t_end);
        }
    }
    deadline.max(end)
}

fn record_transfers(
    sink: &Option<Arc<TraceSink>>,
    transfers: &[Transfer],
    start: SimTime,
    end: SimTime,
    by: Option<WorkerId>,
) {
    let Some(sink) = sink else { return };
    let lane = sink.coordinator();
    for t in transfers {
        sink.record(
            lane,
            TraceEvent::Transfer {
                start: start.into(),
                end: end.into(),
                data: t.data,
                from: t.from,
                to: t.to,
                bytes: t.bytes,
                by,
            },
        );
    }
}

/// Let every idle worker begin its next queued task.
fn start_idle_workers(rt: &mut Runtime, st: &mut SimState, now: SimTime) {
    for wi in 0..rt.workers.len() {
        if rt.workers[wi].running().is_some() {
            continue;
        }
        let Some(q) = rt.workers[wi].start_next() else { continue };
        let tid = q.task;
        rt.graph.mark_running(tid);
        let wid = rt.workers[wi].info.id;
        let space = rt.workers[wi].info.space;

        // Data readiness: prefetch deadline (or acquire now), plus any
        // in-flight copies of read data headed to this space.
        let mut ready = now;
        if rt.config.prefetch {
            if let Some(d) = st.deadlines.remove(&tid) {
                ready = ready.max(d);
            }
            if st.caches.is_some() {
                // Finite device memory: prefetched tiles may have been
                // evicted while this task sat in the queue — re-stage
                // whatever is missing (no-op when everything is still
                // resident).
                ready = ready.max(stage_task_data(rt, st, tid, wid, now));
            }
        } else {
            ready = ready.max(stage_task_data(rt, st, tid, wid, now));
        }
        for (region, mode) in &rt.graph.node(tid).instance.accesses {
            if mode.reads() {
                ready = ready.max(st.xfer.ready_at(region.data, space));
            }
        }

        let inst = &rt.graph.node(tid).instance;
        if st.injector.should_fail(inst.template, q.version, wid) {
            st.doomed.insert(tid);
        }
        let base = rt.costs.duration(inst.template, q.version, inst.data_set_size);
        let scaled = base.mul_f64(st.speed[wi]);
        let duration = st.noise.sample(scaled);
        let start = ready.max(now);
        let end = start + duration;
        st.durations.insert(tid, duration);
        st.starts.insert(tid, start);
        st.events.push(end, (wid, tid));
        if let Some(sink) = &st.sink {
            let attempt = st.attempts.get(&tid).copied().unwrap_or(0) + 1;
            sink.record(
                wi,
                TraceEvent::TaskStart {
                    time: start.into(),
                    task: tid,
                    worker: wid,
                    version: q.version,
                    template: inst.template,
                    attempt,
                },
            );
        }
    }
}
