//! Runtime configuration — the analogue of Nanos++ environment variables.

use versa_core::SchedulerKind;
use versa_trace::TraceConfig;

/// Behavioural switches of the runtime. "We can decide which plug-ins
/// should be enabled through configuration arguments or environment
/// variables ... there is no need to recompile neither the OmpSs runtime
/// nor the application" (paper §III) — likewise, every knob here is a
/// run-time value, so the same application binary can sweep schedulers.
#[derive(Clone, Debug, PartialEq)]
pub struct RuntimeConfig {
    /// Scheduling policy plug-in.
    pub scheduler: SchedulerKind,
    /// Start a task's transfers when it is *assigned* rather than when
    /// its worker picks it up, overlapping transfers with computation and
    /// prefetching queued tasks' data (paper §V-A2). On by default, and
    /// — as in the paper — independent of the scheduling policy.
    pub prefetch: bool,
    /// Whether the implicit `taskwait` at the end of a run flushes all
    /// device-resident data back to the host. Disable for the
    /// `taskwait(noflush)` behaviour of paper §III.
    pub flush_on_wait: bool,
    /// Structured execution tracing (both engines): task lifecycle,
    /// scheduler decision records, transfer spans. Off by default; when
    /// off the engines hold no recorder at all, so runs are byte-identical
    /// to pre-tracing builds. The resulting [`versa_trace::Trace`] lands
    /// in [`RunReport::trace`](crate::RunReport::trace).
    pub tracing: TraceConfig,
    /// Relative half-width of the simulated execution-time noise
    /// (e.g. `0.05` = ±5%); ignored by the native engine.
    pub noise_sigma: f64,
    /// How many times one task may be re-entered into the ready pool
    /// after a failed execution attempt before the run aborts with a
    /// [`RunError`](crate::RunError). Both engines honour it: kernel
    /// panics in the native engine and injected faults in the simulated
    /// one count against the same budget.
    pub max_task_retries: u32,
    /// Reorder the ready pool with weighted start-time fair queuing over
    /// job tags before each dispatch round, so concurrently submitted
    /// jobs interleave instead of running FIFO. Off by default — the
    /// one-shot API has a single implicit job, and keeping the flag off
    /// preserves the exact historical dispatch order.
    pub fair_scheduling: bool,
    /// Native engine: move copy-in byte movement off the coordinator
    /// onto per-worker staging lanes (the coordinator still *plans*
    /// every transfer, so directory decisions stay deterministic). On by
    /// default; turning it off restores the fully synchronous
    /// coordinator path byte-for-byte (same `TransferStats`, same
    /// assignment order). See DESIGN.md §2.2.
    pub async_transfers: bool,
    /// Native engine, async mode: how many tasks beyond the running one
    /// may occupy a worker's staging pipeline, so the next task's inputs
    /// stage while the current kernel runs (the double-buffering the
    /// paper's M2090s did in hardware). `0` still stages asynchronously
    /// but without compute/copy overlap on the same worker.
    pub lookahead_depth: usize,
    /// Bracket each dispatch round with
    /// [`Scheduler::begin_wave`](versa_core::Scheduler::begin_wave) /
    /// `end_wave` so the scheduler snapshots its wave-invariant decision
    /// inputs (candidate sets, reliability, runnable lists) once per
    /// ready frontier instead of once per task. Decisions are
    /// bit-identical with the flag on or off — batching is a pure
    /// amortization — so it is on by default; turning it off restores
    /// the historical per-task recomputation for A/B measurement.
    pub batched_bids: bool,
}

impl RuntimeConfig {
    /// Defaults with a given scheduler.
    pub fn with_scheduler(scheduler: SchedulerKind) -> RuntimeConfig {
        RuntimeConfig { scheduler, ..RuntimeConfig::default() }
    }
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            scheduler: SchedulerKind::versioning(),
            prefetch: true,
            flush_on_wait: true,
            tracing: TraceConfig::default(),
            noise_sigma: 0.05,
            max_task_retries: 3,
            fair_scheduling: false,
            async_transfers: true,
            lookahead_depth: 2,
            batched_bids: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_setup() {
        let c = RuntimeConfig::default();
        assert!(c.prefetch, "paper enables transfer/compute overlap + prefetch");
        assert!(c.flush_on_wait);
        assert!(!c.tracing.enabled);
        assert!(c.tracing.lane_capacity > 0, "bounded but non-empty rings");
        assert_eq!(c.scheduler.label(), "ver");
        assert_eq!(c.max_task_retries, 3);
        assert!(c.async_transfers, "staged transfers overlap by default");
        assert_eq!(c.lookahead_depth, 2, "double-buffering depth");
        assert!(c.batched_bids, "wave-batched bids are a pure amortization");
    }

    #[test]
    fn with_scheduler_overrides_policy_only() {
        let c = RuntimeConfig::with_scheduler(SchedulerKind::Affinity);
        assert_eq!(c.scheduler, SchedulerKind::Affinity);
        assert!(c.prefetch);
    }
}
