//! Remote node attachment: the coordinator-side abstraction that makes a
//! remote machine's workers schedulable like local ones.
//!
//! A remote node registers with its capabilities ([`RemoteCaps`]) and is
//! attached via [`Runtime::attach_remote_node`]. Attachment grows the
//! native arena by one *mirror space* — the coordinator's local image of
//! the node's memory — and appends one [`WorkerState`](versa_core::WorkerState)
//! per advertised worker, all bound to that space. From the scheduler's
//! point of view nothing is special: the mirror space is just another
//! [`MemSpace`] whose copy-in cost the per-destination bandwidth EWMA
//! learns online, so NIC links are priced exactly like PCIe links.
//!
//! Data plane (sync engine only):
//!
//! * **Copy-in**: when the directory plans a transfer into a mirror
//!   space, the engine performs the local `memcpy` *and* ships the bytes
//!   through [`RemoteNode::ship`] inside the same timed window — the
//!   elapsed time fed to `transfer_done` includes the wire round-trip,
//!   so the EWMA measures the real NIC.
//! * **Execution**: the worker shim thread forwards the task through
//!   [`RemoteNode::exec`] (template *name* + version — closures don't
//!   cross the wire; the remote process binds its own kernels) and
//!   writes the returned output buffers back into the mirror space. All
//!   later reads (flushes, dependent tasks) hit the mirror, never the
//!   network.
//! * **Loss**: a transport error surfaces as
//!   [`RemoteError::Lost`]; the engine retires every worker of the node,
//!   fails in-flight tasks with [`FailureKind::NodeLost`](versa_core::FailureKind)
//!   (no version-quarantine strike), and requeues them onto surviving
//!   workers.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;
use versa_core::{TaskId, VersionId};
use versa_mem::{AccessMode, DataId, MemSpace, Region};

/// Capabilities a remote node advertises at registration (the hello
/// handshake's payload, transport-agnostic).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RemoteCaps {
    /// Human-readable node name (host:port for TCP nodes).
    pub name: String,
    /// Number of SMP workers the node contributes.
    pub smp_workers: usize,
    /// SIMD tier the node's kernels dispatch to (informational; results
    /// are bitwise-identical across tiers, so mixing tiers is safe).
    pub simd_tier: String,
}

/// Why a remote operation failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RemoteError {
    /// The remote kernel itself failed (panic or typed error on the
    /// node). Retryable; charged to the version like a local panic.
    Task(String),
    /// The node is unreachable (connection reset, heartbeat timeout).
    /// Charged to the *node*, not the version: the engine retires the
    /// node's workers and requeues its tasks.
    Lost(String),
}

impl std::fmt::Display for RemoteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RemoteError::Task(m) => write!(f, "remote task failed: {m}"),
            RemoteError::Lost(m) => write!(f, "node lost: {m}"),
        }
    }
}

/// One access clause of a remote execution request, in wire-friendly
/// form: the region plus the full allocation length (the node must
/// materialize output-only buffers it never received bytes for).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RemoteAccess {
    /// The accessed region.
    pub region: Region,
    /// Access mode.
    pub mode: AccessMode,
    /// Full length of the allocation backing the region.
    pub alloc_len: u64,
}

/// A task execution request forwarded to a remote node. Templates travel
/// by *name*: the remote process registers the same templates and binds
/// its own kernel closures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RemoteExec {
    /// Task id (for logging/acks only; the node holds no graph).
    pub task: TaskId,
    /// Template name (resolved against the node's own registry).
    pub template: String,
    /// Version to run.
    pub version: VersionId,
    /// Attempt number (1-based).
    pub attempt: u32,
    /// Access clauses.
    pub accesses: Vec<RemoteAccess>,
}

/// A successful remote execution: the measured kernel time and the full
/// bytes of every written allocation, to be written back into the
/// coordinator's mirror space.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RemoteDone {
    /// Wall-clock kernel time on the node.
    pub kernel_time: Duration,
    /// `(allocation, full buffer bytes)` for every written allocation.
    pub writes: Vec<(DataId, Vec<u8>)>,
}

/// Transport to one remote node, as the coordinator drives it. Blocking
/// calls; multiple shim threads may call concurrently (the TCP transport
/// in `versa-net` multiplexes one connection by request tag, and tests
/// use in-process loopback implementations).
pub trait RemoteNode: Send + Sync {
    /// The node's advertised capabilities.
    fn caps(&self) -> RemoteCaps;

    /// Ship the full bytes of `data` to the node, blocking until the
    /// node acknowledges receipt. The engine times this call; the
    /// elapsed time is the NIC bandwidth sample.
    fn ship(&self, data: DataId, bytes: &[u8]) -> Result<(), RemoteError>;

    /// Execute a task on the node, blocking until it completes or fails.
    fn exec(&self, req: &RemoteExec) -> Result<RemoteDone, RemoteError>;

    /// Ask the node to shut down cleanly (best-effort; default no-op).
    fn shutdown(&self) {}
}

/// Coordinator-side record of one attached node.
pub(crate) struct RemoteAttachment {
    /// The transport.
    pub node: Arc<dyn RemoteNode>,
    /// Dense node id (1-based; 0 is the coordinator itself).
    pub node_id: u16,
    /// The node's mirror space in the coordinator arena.
    pub space: MemSpace,
}

/// Lookup tables the sync engine snapshots before a run: which spaces
/// are remote mirrors, and which node each worker belongs to.
#[derive(Clone, Default)]
pub(crate) struct RemotePlan {
    /// Mirror space → transport, for ship-at-transfer-time.
    pub by_space: HashMap<MemSpace, Arc<dyn RemoteNode>>,
    /// Worker index → node id (0 = local).
    pub node_of_worker: Vec<u16>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remote_error_display() {
        assert_eq!(RemoteError::Task("boom".into()).to_string(), "remote task failed: boom");
        assert_eq!(RemoteError::Lost("eof".into()).to_string(), "node lost: eof");
    }
}
