//! End-to-end behavioural tests of the scheduling policies on the
//! simulated platform: the situations the paper's prose describes, plus
//! the §VII extensions, exercised through the full runtime.

use std::time::Duration;
use versa::core::{MeanPolicy, SizeBucketPolicy, VersioningConfig};
use versa::prelude::*;

fn hybrid_runtime(kind: SchedulerKind, smp: usize, gpus: usize) -> (Runtime, TemplateId) {
    let mut rt =
        Runtime::simulated(RuntimeConfig::with_scheduler(kind), PlatformConfig::minotauro(smp, gpus));
    let tpl = rt
        .template("work")
        .main("work_gpu", &[DeviceKind::Cuda])
        .version("work_smp", &[DeviceKind::Smp])
        .register();
    (rt, tpl)
}

#[test]
fn locality_versioning_reduces_device_traffic_on_chains() {
    // Chains of inout tasks ping-pong between GPUs under plain
    // versioning (earliest executor ignores placement); the §VII
    // locality extension keeps each chain on the device that holds its
    // tile.
    // Transfer cost must exceed one queue slot (the busy-time quantum),
    // or the earliest-executor tie-breaks dominate: 32 MB tiles cost
    // ~5.6 ms on the link vs 2 ms of compute.
    let run = |kind: SchedulerKind| {
        let (mut rt, tpl) = hybrid_runtime(kind, 1, 2);
        rt.bind_cost(tpl, VersionId(0), |_| Duration::from_millis(2));
        rt.bind_cost(tpl, VersionId(1), |_| Duration::from_millis(500));
        let tiles: Vec<DataId> = (0..8).map(|_| rt.alloc_bytes(32 << 20)).collect();
        for _ in 0..30 {
            for &t in &tiles {
                rt.task(tpl).read_write(t).submit();
            }
        }
        rt.run().expect("run failed")
    };
    let plain = run(SchedulerKind::versioning());
    let local = run(SchedulerKind::locality_versioning());
    assert!(
        local.transfers.device_bytes < plain.transfers.device_bytes / 2,
        "locality-aware bidding should slash GPU↔GPU traffic: {} vs {}",
        local.transfers.device_bytes,
        plain.transfers.device_bytes
    );
    assert!(local.makespan <= plain.makespan + plain.makespan / 10);
}

#[test]
fn ewma_retargets_after_a_device_slowdown() {
    // The GPU degrades 50× mid-run. The EWMA-configured scheduler walks
    // away from it quickly; the arithmetic mean clings to stale history.
    let run = |policy: MeanPolicy| {
        let kind = SchedulerKind::Versioning(VersioningConfig {
            mean_policy: policy,
            ..Default::default()
        });
        let (mut rt, tpl) = hybrid_runtime(kind, 4, 1);
        let calls = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let c = std::sync::Arc::clone(&calls);
        rt.bind_cost(tpl, VersionId(0), move |_| {
            let n = c.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            if n < 100 {
                Duration::from_millis(2)
            } else {
                Duration::from_millis(100) // thermal throttling
            }
        });
        rt.bind_cost(tpl, VersionId(1), |_| Duration::from_millis(10));
        let tiles: Vec<DataId> = (0..16).map(|_| rt.alloc_bytes(1 << 16)).collect();
        for _ in 0..50 {
            for &t in &tiles {
                rt.task(tpl).read_write(t).submit();
            }
        }
        let report = rt.run().expect("run failed");
        let smp_share = report.version_shares(tpl, 2)[1];
        (report.makespan, smp_share)
    };
    let (arith_time, arith_smp) = run(MeanPolicy::Arithmetic);
    let (ewma_time, ewma_smp) = run(MeanPolicy::Ewma { alpha: 0.3 });
    assert!(
        ewma_smp > arith_smp,
        "EWMA must shift more work to the SMP after the slowdown: {ewma_smp} vs {arith_smp}"
    );
    assert!(
        ewma_time < arith_time,
        "faster adaptation should shorten the run: {ewma_time:?} vs {arith_time:?}"
    );
}

#[test]
fn range_bucketing_skips_relearning_for_similar_sizes() {
    // Two batches whose data-set sizes differ by <1%: exact grouping
    // relearns (slow SMP version runs λ more times), range grouping
    // reuses the first batch's profile.
    let run = |policy: SizeBucketPolicy| {
        let kind = SchedulerKind::Versioning(VersioningConfig {
            bucket_policy: policy,
            ..Default::default()
        });
        let (mut rt, tpl) = hybrid_runtime(kind, 2, 1);
        rt.bind_cost(tpl, VersionId(0), |_| Duration::from_millis(1));
        rt.bind_cost(tpl, VersionId(1), |_| Duration::from_millis(200));
        for bytes in [1_000_000u64, 1_004_096] {
            let tiles: Vec<DataId> = (0..40).map(|_| rt.alloc_bytes(bytes)).collect();
            for &t in &tiles {
                rt.task(tpl).read_write(t).submit();
            }
        }
        let report = rt.run().expect("run failed");
        report.version_histogram(tpl, 2)[1]
    };
    let exact_smp_runs = run(SizeBucketPolicy::Exact);
    let range_smp_runs = run(SizeBucketPolicy::RelativeRange { tolerance: 0.25 });
    assert!(
        exact_smp_runs >= 2 * range_smp_runs,
        "exact grouping must pay learning twice: {exact_smp_runs} vs {range_smp_runs}"
    );
}

#[test]
fn two_templates_learn_independently() {
    // Two version sets with opposite best devices: the scheduler must
    // route each to its own winner (profiles are per-TaskVersionSet).
    let mut rt = Runtime::simulated(
        RuntimeConfig::with_scheduler(SchedulerKind::versioning()),
        PlatformConfig::minotauro(4, 1),
    );
    let gpu_friendly = rt
        .template("gpu_friendly")
        .main("gf_gpu", &[DeviceKind::Cuda])
        .version("gf_smp", &[DeviceKind::Smp])
        .register();
    let smp_friendly = rt
        .template("smp_friendly")
        .main("sf_gpu", &[DeviceKind::Cuda])
        .version("sf_smp", &[DeviceKind::Smp])
        .register();
    rt.bind_cost(gpu_friendly, VersionId(0), |_| Duration::from_millis(1));
    rt.bind_cost(gpu_friendly, VersionId(1), |_| Duration::from_millis(60));
    // Irregular/branchy task: terrible on the accelerator.
    rt.bind_cost(smp_friendly, VersionId(0), |_| Duration::from_millis(60));
    rt.bind_cost(smp_friendly, VersionId(1), |_| Duration::from_millis(2));

    let tiles: Vec<DataId> = (0..200).map(|_| rt.alloc_bytes(4096)).collect();
    for (i, &t) in tiles.iter().enumerate() {
        let tpl = if i % 2 == 0 { gpu_friendly } else { smp_friendly };
        rt.task(tpl).read_write(t).submit();
    }
    let report = rt.run().expect("run failed");
    let gf = report.version_histogram(gpu_friendly, 2);
    let sf = report.version_histogram(smp_friendly, 2);
    assert!(gf[0] > 80, "gpu-friendly work belongs on the GPU: {gf:?}");
    assert!(sf[1] > 80, "smp-friendly work belongs on the SMP: {sf:?}");
}

#[test]
fn breadth_first_matches_report_plumbing() {
    let (mut rt, tpl) = hybrid_runtime(SchedulerKind::BreadthFirst, 2, 2);
    rt.bind_cost(tpl, VersionId(0), |_| Duration::from_millis(3));
    // bf only ever runs the main (GPU) version.
    let tiles: Vec<DataId> = (0..20).map(|_| rt.alloc_bytes(1024)).collect();
    for &t in &tiles {
        rt.task(tpl).read_write(t).submit();
    }
    let report = rt.run().expect("run failed");
    assert_eq!(report.scheduler, "breadth-first");
    assert_eq!(report.version_counts[&(tpl, VersionId(0))], 20);
    assert!(!report.version_counts.contains_key(&(tpl, VersionId(1))));
    // Both GPU workers shared the load.
    let gpu_counts: Vec<u64> = report.worker_task_counts[2..].to_vec();
    assert_eq!(gpu_counts.iter().sum::<u64>(), 20);
    assert!(gpu_counts.iter().all(|&c| c >= 8), "bf should balance: {gpu_counts:?}");
}

#[test]
fn lambda_one_minimizes_learning_cost() {
    let run = |lambda: u64| {
        let kind =
            SchedulerKind::Versioning(VersioningConfig { lambda, ..Default::default() });
        let (mut rt, tpl) = hybrid_runtime(kind, 2, 1);
        rt.bind_cost(tpl, VersionId(0), |_| Duration::from_millis(1));
        rt.bind_cost(tpl, VersionId(1), |_| Duration::from_millis(300));
        let tiles: Vec<DataId> = (0..60).map(|_| rt.alloc_bytes(1 << 12)).collect();
        for &t in &tiles {
            rt.task(tpl).read_write(t).submit();
        }
        rt.run().expect("run failed")
    };
    let fast = run(1);
    let slow = run(10);
    assert!(fast.makespan < slow.makespan);
    assert!(fast.version_histogram(TemplateId(0), 2)[1] < slow.version_histogram(TemplateId(0), 2)[1]);
}
