//! Shape tests: the qualitative claims of the paper's evaluation section
//! must hold in the reproduction. Each test mirrors a sentence of §V-B
//! and asserts it against the regenerated figure data.
//!
//! Matmul/PBPI shapes are checked at paper scale (they are cheap enough);
//! Cholesky sweeps run at selected paper-scale points.

use versa_apps::cholesky::{self, CholeskyConfig, CholeskyVariant};
use versa_apps::matmul::{self, MatmulConfig, MatmulVariant};
use versa_apps::pbpi::{self, PbpiConfig, PbpiVariant};
use versa_core::SchedulerKind;
use versa_runtime::{Runtime, RuntimeConfig};
use versa_sim::PlatformConfig;

fn mm(variant: MatmulVariant, sched: SchedulerKind, smp: usize, gpus: usize) -> versa_runtime::RunReport {
    matmul::run_sim(MatmulConfig::paper(), variant, sched, PlatformConfig::minotauro(smp, gpus))
}

#[test]
fn fig6_mm_gpu_ignores_schedulers_and_smp_count() {
    // "for the mm-gpu version there is no difference between using the
    // affinity scheduler or the dependency-aware scheduler" and "no
    // difference between using one, two, four or eight SMP threads".
    let f = MatmulConfig::paper().flops();
    let dep1 = mm(MatmulVariant::Gpu, SchedulerKind::DepAware, 1, 1).gflops(f);
    let aff1 = mm(MatmulVariant::Gpu, SchedulerKind::Affinity, 1, 1).gflops(f);
    let dep8 = mm(MatmulVariant::Gpu, SchedulerKind::DepAware, 8, 1).gflops(f);
    assert!((dep1 - aff1).abs() / dep1 < 0.05, "dep {dep1} vs aff {aff1}");
    assert!((dep1 - dep8).abs() / dep1 < 0.05, "1 SMP {dep1} vs 8 SMP {dep8}");
}

#[test]
fn fig6_mm_gpu_scales_linearly_with_gpus() {
    // "the application shows the lineal scalability when using one or
    // two GPUs".
    let f = MatmulConfig::paper().flops();
    let one = mm(MatmulVariant::Gpu, SchedulerKind::DepAware, 1, 1).gflops(f);
    let two = mm(MatmulVariant::Gpu, SchedulerKind::DepAware, 1, 2).gflops(f);
    let speedup = two / one;
    assert!((1.85..2.1).contains(&speedup), "2-GPU speedup {speedup}");
}

#[test]
fn fig6_hybrid_overtakes_gpu_only_with_enough_smp_workers() {
    // "the more SMP worker threads collaborate in the application
    // execution, the more benefit versioning scheduler takes".
    let f = MatmulConfig::paper().flops();
    let gpu_only = mm(MatmulVariant::Gpu, SchedulerKind::Affinity, 8, 1).gflops(f);
    let hyb_1 = mm(MatmulVariant::Hybrid, SchedulerKind::versioning(), 1, 1).gflops(f);
    let hyb_8 = mm(MatmulVariant::Hybrid, SchedulerKind::versioning(), 8, 1).gflops(f);
    assert!(hyb_8 > hyb_1, "more SMP workers must help: {hyb_1} -> {hyb_8}");
    assert!(hyb_8 > gpu_only, "hybrid must beat gpu-only at 8 SMP: {hyb_8} vs {gpu_only}");
    // "we cannot expect a huge speed-up": the gain is modest.
    assert!(hyb_8 / gpu_only < 1.35, "gain should be modest, got {}", hyb_8 / gpu_only);
}

#[test]
fn fig7_hybrid_transfers_more_than_gpu_only() {
    // "Because part of the computation is done on SMP devices ... the
    // amount of data transfers for the mm-hyb-ver increases."
    let gpu = mm(MatmulVariant::Gpu, SchedulerKind::Affinity, 8, 2);
    let hyb = mm(MatmulVariant::Hybrid, SchedulerKind::versioning(), 8, 2);
    assert!(hyb.transfers.total_bytes() > gpu.transfers.total_bytes());
    // "also transferring data between GPU devices due to a lack of data
    // locality".
    assert!(hyb.transfers.device_bytes > 0, "expected device-device traffic");
    assert_eq!(gpu.transfers.device_bytes, 0, "gpu-only affinity keeps tiles put");
}

#[test]
fn fig8_version_mix_matches_paper() {
    let cfg = MatmulConfig::paper();
    let mut rt = Runtime::simulated(
        RuntimeConfig::with_scheduler(SchedulerKind::versioning()),
        PlatformConfig::minotauro(8, 1),
    );
    let app = matmul::build(&mut rt, cfg, MatmulVariant::Hybrid);
    let report = rt.run().expect("run failed");
    let hist = report.version_histogram(app.template, 3);
    let total: u64 = hist.iter().sum();
    assert_eq!(total as usize, cfg.task_count());
    // "The fastest implementation (the CUBLAS version) is picked most of
    // the times".
    assert!(hist[0] as f64 / total as f64 > 0.75, "cublas share too low: {hist:?}");
    // "the CUDA version is called only a few times at the beginning".
    assert!(hist[1] <= 16, "hand-cuda should only run during learning: {hist:?}");
    // "[SMP workers] still take about 10% of the work on average".
    let smp_share = hist[2] as f64 / total as f64;
    assert!((0.05..0.25).contains(&smp_share), "smp share {smp_share}");

    // "they do more work when there is only one GPU".
    let mut rt2 = Runtime::simulated(
        RuntimeConfig::with_scheduler(SchedulerKind::versioning()),
        PlatformConfig::minotauro(8, 2),
    );
    let app2 = matmul::build(&mut rt2, cfg, MatmulVariant::Hybrid);
    let hist2 = rt2.run().expect("run failed").version_histogram(app2.template, 3);
    assert!(hist2[2] < hist[2], "SMP does less with 2 GPUs: {hist2:?} vs {hist:?}");
}

fn chol(variant: CholeskyVariant, sched: SchedulerKind, smp: usize, gpus: usize) -> versa_runtime::RunReport {
    cholesky::run_sim(CholeskyConfig::paper(), variant, sched, PlatformConfig::minotauro(smp, gpus))
}

#[test]
fn fig9_potrf_smp_is_the_worst_version() {
    // "the potrf-smp is the version that gets less performance in all
    // cases".
    let f = CholeskyConfig::paper().flops();
    for gpus in [1, 2] {
        let smp_v = chol(CholeskyVariant::PotrfSmp, SchedulerKind::Affinity, 4, gpus).gflops(f);
        let gpu_v = chol(CholeskyVariant::PotrfGpu, SchedulerKind::Affinity, 4, gpus).gflops(f);
        let hyb_v = chol(CholeskyVariant::PotrfHybrid, SchedulerKind::versioning(), 4, gpus).gflops(f);
        assert!(smp_v < gpu_v, "{gpus} GPUs: smp {smp_v} !< gpu {gpu_v}");
        assert!(smp_v < hyb_v, "{gpus} GPUs: smp {smp_v} !< hyb {hyb_v}");
    }
}

#[test]
fn fig9_hybrid_is_close_to_gpu_but_pays_learning() {
    // "there is a small number of task instances, so the initial
    // learning phase of the versioning scheduler impacts on application's
    // performance" — hybrid lands within 15% of the best gpu-only run.
    let f = CholeskyConfig::paper().flops();
    let gpu_v = chol(CholeskyVariant::PotrfGpu, SchedulerKind::Affinity, 8, 2).gflops(f);
    let hyb_v = chol(CholeskyVariant::PotrfHybrid, SchedulerKind::versioning(), 8, 2).gflops(f);
    assert!(hyb_v > 0.8 * gpu_v, "hybrid {hyb_v} too far below gpu {gpu_v}");
}

#[test]
fn fig11_versioning_sends_potrf_to_the_gpus() {
    // "the scheduler decides to assign all the work to the GPUs because
    // they become the earliest executors" (SMP only gets the forced
    // learning runs).
    let cfg = CholeskyConfig::paper();
    let mut rt = Runtime::simulated(
        RuntimeConfig::with_scheduler(SchedulerKind::versioning()),
        PlatformConfig::minotauro(8, 2),
    );
    let app = cholesky::build(&mut rt, cfg, CholeskyVariant::PotrfHybrid);
    let report = rt.run().expect("run failed");
    let hist = report.version_histogram(app.potrf, 2);
    assert_eq!(hist.iter().sum::<u64>() as usize, cfg.nb());
    assert!(hist[1] <= 3, "SMP potrf beyond the λ learning runs: {hist:?}");
    assert!(hist[0] >= 13, "GPU must take the rest: {hist:?}");
}

fn pb(variant: PbpiVariant, sched: SchedulerKind, smp: usize, gpus: usize) -> versa_runtime::RunReport {
    pbpi::run_sim(PbpiConfig::paper(), variant, sched, PlatformConfig::minotauro(smp, gpus))
}

#[test]
fn fig12_smp_beats_gpu_and_hybrid_beats_both() {
    // "pbpi-smp versions run faster than the pbpi-gpu versions" and "the
    // versioning scheduler is able to find the appropriate balance ...
    // and decrease the execution time".
    let smp = pb(PbpiVariant::Smp, SchedulerKind::DepAware, 8, 2).makespan;
    let gpu = pb(PbpiVariant::Gpu, SchedulerKind::Affinity, 8, 2).makespan;
    let hyb = pb(PbpiVariant::Hybrid, SchedulerKind::versioning(), 8, 2).makespan;
    assert!(smp < gpu, "pbpi-smp {smp:?} !< pbpi-gpu {gpu:?}");
    assert!(hyb < smp, "pbpi-hyb {hyb:?} !< pbpi-smp {smp:?}");
}

#[test]
fn fig13_smp_version_transfers_nothing() {
    // "data always stay in the host memory and no data transfers will be
    // needed".
    let smp = pb(PbpiVariant::Smp, SchedulerKind::DepAware, 4, 2);
    assert_eq!(smp.transfers.total_bytes(), 0);
    // The hybrid transfers plenty.
    let hyb = pb(PbpiVariant::Hybrid, SchedulerKind::versioning(), 4, 2);
    assert!(hyb.transfers.total_bytes() > 0);
}

#[test]
fn fig14_fig15_loop1_is_more_gpu_biased_than_loop2() {
    // "For the first loop, the versioning scheduler decides to send it
    // most of the times to the GPU, but the execution of tasks of the
    // second loop is shared between GPU and SMP" with "thousands" of SMP
    // loop-2 runs.
    let cfg = PbpiConfig::paper();
    let mut rt = Runtime::simulated(
        RuntimeConfig::with_scheduler(SchedulerKind::versioning()),
        PlatformConfig::minotauro(4, 2),
    );
    let app = pbpi::build(&mut rt, cfg, PbpiVariant::Hybrid);
    let report = rt.run().expect("run failed");
    let l1 = report.version_shares(app.loop1, 2);
    let l2 = report.version_shares(app.loop2, 2);
    assert!(l1[0] > 0.6, "loop1 mostly GPU, got {l1:?}");
    assert!(l1[0] > l2[0], "loop1 more GPU-biased than loop2: {l1:?} vs {l2:?}");
    let l2_smp_runs = report.version_histogram(app.loop2, 2)[1];
    assert!(l2_smp_runs >= 1000, "loop2 SMP runs in the thousands, got {l2_smp_runs}");
}

#[test]
fn versioning_wins_or_ties_overall() {
    // §VII: "in most of the cases, the versioning scheduler outperforms
    // the other existent schedulers" — check the flagship configuration
    // of each application.
    let f = MatmulConfig::paper().flops();
    let mm_best_baseline = mm(MatmulVariant::Gpu, SchedulerKind::Affinity, 8, 2).gflops(f);
    let mm_ver = mm(MatmulVariant::Hybrid, SchedulerKind::versioning(), 8, 2).gflops(f);
    assert!(mm_ver > mm_best_baseline * 0.98);

    let pb_best_baseline = pb(PbpiVariant::Smp, SchedulerKind::DepAware, 8, 2).makespan;
    let pb_ver = pb(PbpiVariant::Hybrid, SchedulerKind::versioning(), 8, 2).makespan;
    assert!(pb_ver < pb_best_baseline);
}

#[test]
fn hand_cuda_version_is_abandoned_after_learning() {
    // The versioning scheduler's defining trace: a strictly-worse version
    // on the same device runs its forced λ learning executions (plus at
    // most a handful of partial-information assignments while the first
    // measurements are still in flight) and is then never picked again
    // out of 4096 tasks.
    let cfg = MatmulConfig::paper();
    for (smp, gpus) in [(2, 1), (8, 2)] {
        let mut rt = Runtime::simulated(
            RuntimeConfig::with_scheduler(SchedulerKind::versioning()),
            PlatformConfig::minotauro(smp, gpus),
        );
        let app = matmul::build(&mut rt, cfg, MatmulVariant::Hybrid);
        let report = rt.run().expect("run failed");
        let cuda_runs = report.version_histogram(app.template, 3)[1];
        assert!(cuda_runs >= 3, "λ learning runs required ({smp} SMP, {gpus} GPU): {cuda_runs}");
        assert!(cuda_runs <= 10, "hand-cuda must be abandoned ({smp} SMP, {gpus} GPU): {cuda_runs}");
    }
}
