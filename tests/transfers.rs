//! Overlapped-transfer semantics: the async staging pipeline must be
//! *observationally equivalent* to the synchronous coordinator path —
//! same numerics, same `TransferStats` — while staging failures route
//! through the same recovery machinery as kernel panics.

use versa::apps::matmul::{self, MatmulConfig, MatmulVariant};
use versa::prelude::*;
use versa::runtime::NativeConfig;

fn small() -> MatmulConfig {
    // nb = 4: 64 gemm tasks over 16+16+16 tiles of 48×48 f64.
    MatmulConfig { n: 192, bs: 48 }
}

fn one_gpu() -> NativeConfig {
    NativeConfig { smp_workers: 0, gpus: 1, gpu_lanes: 2, link_bandwidth: None }
}

fn runtime_config(async_transfers: bool, lookahead_depth: usize) -> RuntimeConfig {
    let mut cfg = RuntimeConfig::with_scheduler(SchedulerKind::DepAware);
    cfg.async_transfers = async_transfers;
    cfg.lookahead_depth = lookahead_depth;
    cfg
}

/// Golden regression for the synchronous path: with one GPU, every tile
/// is copied up exactly once (48 inputs) and only the written `C` tiles
/// flush back (16 outputs). Pins the historical count-at-dispatch
/// accounting the async path must reproduce.
#[test]
fn sync_transfer_stats_match_golden() {
    let (report, data) = matmul::run_native_with(
        runtime_config(false, 0),
        small(),
        MatmulVariant::Gpu,
        one_gpu(),
        7,
    );
    let tile = 48 * 48 * 8u64;
    assert_eq!(report.transfers.input_count, 48, "16 A + 16 B + 16 C copy-ins");
    assert_eq!(report.transfers.input_bytes, 48 * tile);
    assert_eq!(report.transfers.output_count, 16, "only written C tiles flush");
    assert_eq!(report.transfers.output_bytes, 16 * tile);
    assert_eq!(report.transfers.device_count, 0);
    assert!(data.max_error() < 1e-9);
}

/// `async_transfers = false` vs `true` on a fixed seed: identical
/// `TransferStats`, identical version counts, identical numerics. With a
/// single worker the assignment trace is fully deterministic, so this is
/// the strictest possible byte-identity check.
#[test]
fn async_path_reproduces_sync_transfer_stats_exactly() {
    let (sync_report, sync_data) = matmul::run_native_with(
        runtime_config(false, 0),
        small(),
        MatmulVariant::Gpu,
        one_gpu(),
        7,
    );
    for depth in [0, 2] {
        let (async_report, async_data) = matmul::run_native_with(
            runtime_config(true, depth),
            small(),
            MatmulVariant::Gpu,
            one_gpu(),
            7,
        );
        assert_eq!(
            async_report.transfers, sync_report.transfers,
            "async (depth {depth}) must move exactly the bytes the sync path moved"
        );
        assert_eq!(async_report.tasks_executed, sync_report.tasks_executed);
        assert_eq!(async_report.version_counts, sync_report.version_counts);
        assert_eq!(async_data.c, sync_data.c, "bitwise-identical results");
    }
}

/// Independent tasks on two GPUs are all planned in the first dispatch
/// round, in submission order, in both modes — so even a multi-worker
/// run keeps deterministic, mode-independent transfer accounting.
#[test]
fn independent_tasks_have_deterministic_stats_across_modes_and_workers() {
    let run = |async_transfers: bool| -> (TransferStats, Vec<Vec<f64>>) {
        let mut cfg = runtime_config(async_transfers, 2);
        cfg.flush_on_wait = true;
        let mut rt = Runtime::native(
            cfg,
            NativeConfig { smp_workers: 0, gpus: 2, gpu_lanes: 1, link_bandwidth: None },
        );
        let tpl = rt.template("scale").main("scale_gpu", &[DeviceKind::Cuda]).register();
        rt.bind_native(tpl, VersionId(0), |ctx| {
            for v in ctx.f64_mut(1) {
                *v += 1.0;
            }
        });
        let tiles: Vec<(DataId, DataId)> = (0..8)
            .map(|i| {
                let a = rt.alloc_from_f64(&[i as f64; 16]);
                let c = rt.alloc_from_f64(&[0.0; 16]);
                (a, c)
            })
            .collect();
        for &(a, c) in &tiles {
            rt.task(tpl).read(a).read_write(c).submit();
        }
        let report = rt.run().expect("run failed");
        let out = tiles.iter().map(|&(_, c)| rt.read_f64(c)).collect();
        (report.transfers, out)
    };
    let (sync_stats, sync_out) = run(false);
    let (async_stats, async_out) = run(true);
    assert_eq!(async_stats, sync_stats);
    assert_eq!(async_out, sync_out);
    assert_eq!(sync_stats.input_count, 16, "8 A + 8 C copy-ins");
    assert_eq!(sync_stats.output_count, 8, "written C tiles flush home");
}

/// Per-worker staging accounting: bytes and counts attributed to the
/// worker whose lane moved them, stage/compute times populated, overlap
/// never exceeding staging time.
#[test]
fn worker_transfer_breakdown_is_populated() {
    let (report, _) = matmul::run_native_with(
        runtime_config(true, 2),
        small(),
        MatmulVariant::Gpu,
        // Throttle the emulated link so staging time is measurable.
        NativeConfig { smp_workers: 0, gpus: 1, gpu_lanes: 2, link_bandwidth: Some(200_000_000) },
        7,
    );
    assert_eq!(report.worker_transfers.len(), 1);
    let wt = &report.worker_transfers[0];
    let tile = 48 * 48 * 8u64;
    assert_eq!(wt.staged_count, 48);
    assert_eq!(wt.staged_bytes, 48 * tile);
    assert!(wt.stage_time > std::time::Duration::ZERO);
    assert!(wt.compute_time > std::time::Duration::ZERO);
    assert!(wt.overlap_time <= wt.stage_time);
    let ratio = wt.overlap_ratio();
    assert!((0.0..=1.0).contains(&ratio), "overlap ratio {ratio} out of range");
}

/// An injected staging-lane fault is a first-class recoverable failure:
/// logged as a `TaskFailure`, reported to the scheduler, retried after
/// rollback — and the numerics still come out right.
#[test]
fn staging_fault_is_recovered_by_retry() {
    let mut rt = Runtime::native(runtime_config(true, 2), one_gpu());
    let tpl = rt.template("scale").main("scale_gpu", &[DeviceKind::Cuda]).register();
    rt.bind_native(tpl, VersionId(0), |ctx| {
        for v in ctx.f64_mut(1) {
            *v *= 2.0;
        }
    });
    let a = rt.alloc_from_f64(&[3.0; 8]);
    let c = rt.alloc_from_f64(&[1.0; 8]);
    rt.task(tpl).read(a).read_write(c).submit();
    rt.inject_stage_fault(a, 1);

    let report = rt.run().expect("one staging fault is within the retry budget");
    assert_eq!(report.tasks_executed, 1);
    assert_eq!(report.failures.failure_count(), 1);
    assert_eq!(report.failures.retries, 1);
    let f = &report.failures.events[0];
    assert_eq!(f.kind, FailureKind::Panic);
    assert!(f.message.contains("injected staging fault"), "got: {}", f.message);
    // The rollback re-exposed the host copy, so the retry re-staged it.
    assert_eq!(rt.read_f64(c), vec![2.0; 8]);
    assert_eq!(rt.read_f64(a), vec![3.0; 8], "input survived the faulted copy");
}

/// Exhausting the retry budget on staging faults aborts exactly like
/// kernel panics do: a `RunError` with a coherent partial report.
#[test]
fn persistent_staging_faults_exhaust_retries_and_abort() {
    let mut cfg = runtime_config(true, 2);
    cfg.max_task_retries = 2;
    let mut rt = Runtime::native(cfg, one_gpu());
    let tpl = rt.template("scale").main("scale_gpu", &[DeviceKind::Cuda]).register();
    rt.bind_native(tpl, VersionId(0), |ctx| {
        for v in ctx.f64_mut(0) {
            *v *= 2.0;
        }
    });
    let c = rt.alloc_from_f64(&[1.0; 8]);
    let task = rt.task(tpl).read_write(c).submit();
    rt.inject_stage_fault(c, 10);

    let err = rt.run().expect_err("every staging attempt faults");
    assert_eq!(err.task, task);
    assert_eq!(err.kind, FailureKind::Panic);
    assert!(err.message.contains("injected staging fault"));
    assert_eq!(err.report.failures.failure_count(), 3, "1 attempt + 2 retries");
    assert_eq!(err.report.failures.retries, 2);
}

/// A task that merely *waited* on another task's failed copy is requeued
/// silently: only the origin task is charged a failure, and both tasks
/// complete once the retry restages the datum.
#[test]
fn upstream_staging_failure_does_not_charge_innocent_waiters() {
    let mut rt = Runtime::native(runtime_config(true, 2), one_gpu());
    let tpl = rt.template("scale").main("scale_gpu", &[DeviceKind::Cuda]).register();
    rt.bind_native(tpl, VersionId(0), |ctx| {
        let src = ctx.f64(0)[0];
        for v in ctx.f64_mut(1) {
            *v += src;
        }
    });
    // Both tasks read the same tile; the second's plan waits on the
    // first's in-flight copy, which is the one that faults.
    let shared = rt.alloc_from_f64(&[5.0; 8]);
    let c1 = rt.alloc_from_f64(&[0.0; 8]);
    let c2 = rt.alloc_from_f64(&[0.0; 8]);
    rt.task(tpl).read(shared).read_write(c1).submit();
    rt.task(tpl).read(shared).read_write(c2).submit();
    rt.inject_stage_fault(shared, 1);

    let report = rt.run().expect("retry must carry both tasks");
    assert_eq!(report.tasks_executed, 2);
    assert_eq!(
        report.failures.failure_count(),
        1,
        "only the task whose copy faulted is charged"
    );
    assert_eq!(report.failures.retries, 1);
    assert_eq!(rt.read_f64(c1), vec![5.0; 8]);
    assert_eq!(rt.read_f64(c2), vec![5.0; 8]);
}

/// The sync path ignores injected staging faults entirely (its copies
/// run on the coordinator), keeping the degraded mode byte-identical.
#[test]
fn sync_mode_ignores_staging_faults() {
    let mut rt = Runtime::native(runtime_config(false, 0), one_gpu());
    let tpl = rt.template("scale").main("scale_gpu", &[DeviceKind::Cuda]).register();
    rt.bind_native(tpl, VersionId(0), |ctx| {
        for v in ctx.f64_mut(0) {
            *v *= 2.0;
        }
    });
    let c = rt.alloc_from_f64(&[1.0; 8]);
    rt.task(tpl).read_write(c).submit();
    rt.inject_stage_fault(c, 5);
    let report = rt.run().expect("sync path never consults staging faults");
    assert_eq!(report.failures.failure_count(), 0);
    assert_eq!(rt.read_f64(c), vec![2.0; 8]);
}
