//! Finite GPU memory: the runtime manages each device memory as an LRU
//! cache, evicting tiles (with write-back for sole copies) when the
//! working set exceeds capacity — and re-uploading them on reuse.

use std::time::Duration;
use versa::prelude::*;

/// A GPU-only workload whose full data set exceeds a small device memory
/// but whose per-task working set fits.
fn run_with_capacity(capacity: Option<u64>, rounds: usize) -> RunReport {
    let mut platform = PlatformConfig::minotauro(1, 1);
    platform.gpu_mem_capacity = capacity;
    let mut rt =
        Runtime::simulated(RuntimeConfig::with_scheduler(SchedulerKind::DepAware), platform);
    let tpl = rt.template("t").main("t_gpu", &[DeviceKind::Cuda]).register();
    rt.bind_cost(tpl, VersionId(0), |_| Duration::from_micros(100));
    // 8 tiles of 1 MB; device memory (when finite) holds only 3.
    let tiles: Vec<DataId> = (0..8).map(|_| rt.alloc_bytes(1_000_000)).collect();
    for _ in 0..rounds {
        for &t in &tiles {
            rt.task(tpl).read_write(t).submit();
        }
    }
    rt.run().expect("run failed")
}

#[test]
fn unlimited_memory_uploads_each_tile_once() {
    let report = run_with_capacity(None, 3);
    // 8 uploads, tiles stay resident across rounds, 8 flushes at the end.
    assert_eq!(report.transfers.input_bytes, 8_000_000);
    assert_eq!(report.transfers.output_bytes, 8_000_000);
}

#[test]
fn finite_memory_causes_reuploads_and_writebacks() {
    let small = run_with_capacity(Some(3_000_000), 3);
    let unlimited = run_with_capacity(None, 3);
    // Touching 8 tiles per round with room for 3 thrashes the cache:
    // every round re-uploads, and every eviction of these inout tiles
    // (sole copies live on the GPU) writes back first.
    assert!(
        small.transfers.input_bytes > unlimited.transfers.input_bytes,
        "evictions must force re-uploads: {:?} vs {:?}",
        small.transfers,
        unlimited.transfers
    );
    assert!(
        small.transfers.output_bytes > unlimited.transfers.output_bytes,
        "sole-copy evictions must write back: {:?}",
        small.transfers
    );
    // Same computation still happens.
    assert_eq!(small.tasks_executed, unlimited.tasks_executed);
    // And it costs time: the makespan grows.
    assert!(small.makespan > unlimited.makespan);
}

#[test]
fn capacity_larger_than_working_set_changes_nothing() {
    let big = run_with_capacity(Some(100_000_000), 2);
    let unlimited = run_with_capacity(None, 2);
    assert_eq!(big.transfers, unlimited.transfers);
    assert_eq!(big.makespan, unlimited.makespan);
}

#[test]
fn results_remain_deterministic_with_eviction() {
    let a = run_with_capacity(Some(3_000_000), 3);
    let b = run_with_capacity(Some(3_000_000), 3);
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.transfers, b.transfers);
}

#[test]
#[should_panic(expected = "exceeds device memory capacity")]
fn allocation_bigger_than_device_memory_panics() {
    let mut platform = PlatformConfig::minotauro(1, 1);
    platform.gpu_mem_capacity = Some(1_000);
    let mut rt =
        Runtime::simulated(RuntimeConfig::with_scheduler(SchedulerKind::DepAware), platform);
    let tpl = rt.template("t").main("t_gpu", &[DeviceKind::Cuda]).register();
    rt.bind_cost(tpl, VersionId(0), |_| Duration::from_micros(1));
    let big = rt.alloc_bytes(10_000);
    rt.task(tpl).read_write(big).submit();
    let _ = rt.run().expect("run failed");
}
