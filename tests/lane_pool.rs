//! The emulated GPU's lane pool must be persistent: every multi-lane
//! kernel batch across every task of a run has to execute on the same
//! small, fixed set of OS threads (the worker plus its pooled lanes) —
//! never on per-task spawned threads.

use std::collections::HashSet;
use std::sync::{Arc, Mutex};
use std::thread::ThreadId;
use versa_core::{DeviceKind, SchedulerKind, VersionId};
use versa_runtime::{NativeConfig, Runtime, RuntimeConfig};

#[test]
fn gpu_kernels_reuse_a_fixed_thread_set_across_tasks() {
    const TASKS: usize = 40;
    const LANES: usize = 4;

    let mut rt = Runtime::native(
        RuntimeConfig::with_scheduler(SchedulerKind::DepAware),
        NativeConfig { smp_workers: 0, gpus: 1, gpu_lanes: LANES, link_bandwidth: None },
    );
    let template = rt.template("lane_probe").main("lane_probe_gpu", &[DeviceKind::Cuda]).register();

    // Record which OS thread executes each parallel band of each task.
    let ids: Arc<Mutex<HashSet<ThreadId>>> = Arc::new(Mutex::new(HashSet::new()));
    let sink = Arc::clone(&ids);
    rt.bind_native(template, VersionId(0), move |ctx| {
        let sink = &sink;
        ctx.par_bands(64, |band| {
            assert!(!band.is_empty());
            sink.lock().unwrap().insert(std::thread::current().id());
        });
        ctx.f64_mut(0)[0] += 1.0;
    });

    let cells: Vec<_> = (0..TASKS).map(|_| rt.alloc_from_f64(&[0.0])).collect();
    for &cell in &cells {
        rt.task(template).read_write(cell).submit();
    }
    let report = rt.run().expect("run failed");
    assert_eq!(report.tasks_executed as usize, TASKS);
    for &cell in &cells {
        assert_eq!(rt.read_f64(cell)[0], 1.0);
    }

    // 40 tasks × bands each, but only the worker thread + its LANES − 1
    // persistent pool threads may ever run a band. Per-task spawning
    // (the old behavior) would show up as ~TASKS × (LANES − 1) ids.
    let distinct = ids.lock().unwrap().len();
    assert!(
        distinct <= LANES,
        "parallel bands ran on {distinct} distinct threads; the lane pool must cap this at {LANES}"
    );
}
