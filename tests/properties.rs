//! Property-based tests on the runtime's core invariants.

use proptest::prelude::*;
use versa::core::{DeviceKind, SchedulerKind, TaskId, VersionId, WorkerId};
use versa::mem::{AccessMode, DataId, Directory, MemSpace, Region};
use versa::runtime::{NativeConfig, Runtime, RuntimeConfig, TaskGraph};
use versa::sim::{EventQueue, SimTime};

// ---------------------------------------------------------------------
// Serializability: any parallel schedule produces the serial result
// ---------------------------------------------------------------------

/// A randomly generated task: which buffers it reads, which it updates,
/// and a small integer seasoning its arithmetic.
#[derive(Clone, Debug)]
struct GenTask {
    reads: Vec<usize>,
    writes: Vec<usize>,
    salt: u64,
}

fn gen_task(buffers: usize) -> impl Strategy<Value = GenTask> {
    let idx = 0..buffers;
    (
        proptest::collection::vec(idx.clone(), 0..3),
        proptest::collection::vec(idx, 1..3),
        0u64..100,
    )
        .prop_map(|(reads, mut writes, salt)| {
            writes.sort_unstable();
            writes.dedup();
            GenTask { reads, writes, salt }
        })
}

/// Deterministic task semantics used both by the runtime kernels and the
/// serial reference: every written buffer is updated from its own
/// contents, the sum of the read buffers' first elements, and the salt.
fn apply(task: &GenTask, buffers: &mut [Vec<f64>]) {
    let read_sum: f64 = task.reads.iter().map(|&r| buffers[r][0]).sum();
    for &w in &task.writes {
        let buf = &mut buffers[w];
        for (i, v) in buf.iter_mut().enumerate() {
            *v = *v * 0.5 + read_sum + task.salt as f64 + i as f64;
        }
    }
}

fn run_parallel(tasks: &[GenTask], buffers: usize, len: usize, sched: SchedulerKind) -> Vec<Vec<f64>> {
    let mut rt = Runtime::native(RuntimeConfig::with_scheduler(sched), NativeConfig::new(2, 2));
    let tpl = rt
        .template("gen")
        .main("gen_any", &[DeviceKind::Smp, DeviceKind::Cuda])
        .register();
    let handles: Vec<DataId> = (0..buffers)
        .map(|b| rt.alloc_from_f64(&vec![b as f64 + 1.0; len]))
        .collect();
    // One kernel serves every instance. Each task passes its index into
    // the shared descriptor table through a dedicated 1-element read-only
    // buffer (argument 0) — the runtime's way of carrying immediate
    // arguments. Arguments then follow in clause order: reads, writes.
    let task_table = std::sync::Arc::new(tasks.to_vec());
    let table = std::sync::Arc::clone(&task_table);
    rt.bind_native(tpl, VersionId(0), move |ctx| {
        let idx = ctx.f64(0)[0] as usize;
        let task = &table[idx];
        let read_sum: f64 = (0..task.reads.len()).map(|i| ctx.f64(1 + i)[0]).sum();
        let first_write = 1 + task.reads.len();
        for (wi, _) in task.writes.iter().enumerate() {
            let buf = ctx.f64_mut(first_write + wi);
            for (i, v) in buf.iter_mut().enumerate() {
                *v = *v * 0.5 + read_sum + task.salt as f64 + i as f64;
            }
        }
    });
    // Descriptor cells: one tiny read-only buffer per task carrying its
    // index (how a real runtime passes immediate arguments).
    for (idx, task) in task_table.iter().enumerate() {
        let desc = rt.alloc_from_f64(&[idx as f64]);
        let mut builder = rt.task(tpl).read(desc);
        for &r in &task.reads {
            builder = builder.read(handles[r]);
        }
        for &w in &task.writes {
            builder = builder.read_write(handles[w]);
        }
        builder.submit();
    }
    rt.run().expect("run failed");
    handles.iter().map(|&h| rt.read_f64(h)).collect()
}

fn run_serial(tasks: &[GenTask], buffers: usize, len: usize) -> Vec<Vec<f64>> {
    let mut bufs: Vec<Vec<f64>> = (0..buffers).map(|b| vec![b as f64 + 1.0; len]).collect();
    for t in tasks {
        apply(t, &mut bufs);
    }
    bufs
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24 })]

    #[test]
    fn parallel_execution_equals_serial_elaboration(
        tasks in proptest::collection::vec(gen_task(4), 1..14),
        sched_pick in 0usize..4,
    ) {
        let sched = match sched_pick {
            0 => SchedulerKind::DepAware,
            1 => SchedulerKind::Affinity,
            2 => SchedulerKind::BreadthFirst,
            _ => SchedulerKind::versioning(),
        };
        let expect = run_serial(&tasks, 4, 6);
        let got = run_parallel(&tasks, 4, 6, sched);
        for (e, g) in expect.iter().zip(&got) {
            for (a, b) in e.iter().zip(g) {
                prop_assert!((a - b).abs() < 1e-9, "serializability violated: {a} vs {b}");
            }
        }
    }
}

// ---------------------------------------------------------------------
// Coherence directory invariants
// ---------------------------------------------------------------------

#[derive(Clone, Debug)]
enum DirOp {
    Acquire { space: u16, mode: u8 },
    Flush,
}

fn dir_op() -> impl Strategy<Value = DirOp> {
    prop_oneof![
        (0u16..4, 0u8..3).prop_map(|(space, mode)| DirOp::Acquire { space, mode }),
        Just(DirOp::Flush),
    ]
}

proptest! {
    #[test]
    fn directory_never_loses_the_only_valid_copy(ops in proptest::collection::vec(dir_op(), 1..60)) {
        let data = DataId(0);
        let dir = Directory::new();
        dir.register(data, 128, MemSpace::HOST);
        // Model: the set of spaces holding the latest value.
        let mut model: Vec<MemSpace> = vec![MemSpace::HOST];
        for op in ops {
            match op {
                DirOp::Acquire { space, mode } => {
                    let space = if space == 0 { MemSpace::HOST } else { MemSpace::device(space - 1) };
                    let mode = match mode { 0 => AccessMode::In, 1 => AccessMode::Out, _ => AccessMode::InOut };
                    let transfer = dir.acquire(data, space, mode);
                    // Any copy-in must source a space that held the value.
                    if let Some(t) = transfer {
                        prop_assert!(model.contains(&t.from), "source {:?} was stale", t.from);
                        prop_assert_eq!(t.to, space);
                        prop_assert_eq!(t.bytes, 128);
                    }
                    if mode.writes() {
                        model = vec![space];
                    } else if !model.contains(&space) {
                        model.push(space);
                    }
                }
                DirOp::Flush => {
                    let transfer = dir.flush_to_host(data);
                    if let Some(t) = transfer {
                        prop_assert!(model.contains(&t.from));
                        prop_assert_eq!(t.to, MemSpace::HOST);
                    }
                    if !model.contains(&MemSpace::HOST) {
                        model.push(MemSpace::HOST);
                    }
                }
            }
            // Directory and model agree on validity everywhere.
            let spaces = [MemSpace::HOST, MemSpace::device(0), MemSpace::device(1), MemSpace::device(2)];
            for s in spaces {
                prop_assert_eq!(dir.valid_in(data, s), model.contains(&s), "space {:?} mismatch", s);
            }
            prop_assert!(!model.is_empty(), "value vanished");
        }
    }
}

// ---------------------------------------------------------------------
// Region algebra
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn region_overlap_matches_bytewise_definition(
        a_off in 0u64..64, a_len in 0u64..32,
        b_off in 0u64..64, b_len in 0u64..32,
    ) {
        let a = Region::range(DataId(0), a_off, a_len);
        let b = Region::range(DataId(0), b_off, b_len);
        let brute = (a_off..a_off + a_len).any(|byte| (b_off..b_off + b_len).contains(&byte));
        prop_assert_eq!(a.overlaps(&b), brute);
        prop_assert_eq!(a.overlaps(&b), b.overlaps(&a), "overlap must be symmetric");
    }

    #[test]
    fn containment_implies_overlap_for_nonempty(
        a_off in 0u64..64, a_len in 1u64..32,
        b_off in 0u64..64, b_len in 1u64..32,
    ) {
        let a = Region::range(DataId(0), a_off, a_len);
        let b = Region::range(DataId(0), b_off, b_len);
        if a.contains(&b) {
            prop_assert!(a.overlaps(&b));
        }
    }
}

// ---------------------------------------------------------------------
// Profile means
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn arithmetic_mean_matches_batch_recomputation(samples in proptest::collection::vec(1u64..1_000_000, 1..50)) {
        use versa::core::{MeanPolicy, ProfileStore, SizeBucketPolicy, TemplateId};
        let mut store = ProfileStore::new(SizeBucketPolicy::Exact, MeanPolicy::Arithmetic, 3);
        for &s in &samples {
            store.record(TemplateId(0), 1, 99, VersionId(0), std::time::Duration::from_nanos(s));
        }
        let mean = store.mean(TemplateId(0), 99, VersionId(0)).unwrap().as_nanos() as f64;
        let expect = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        prop_assert!((mean - expect).abs() <= expect * 1e-9 + 2.0, "mean {mean} vs {expect}");
        prop_assert_eq!(store.count(TemplateId(0), 99, VersionId(0)), samples.len() as u64);
    }

    #[test]
    fn bucket_keys_are_monotone_in_size(
        sizes in proptest::collection::vec(0u64..1_000_000_000, 2..40),
        tol in 0.01f64..2.0,
    ) {
        use versa::core::SizeBucketPolicy;
        let policy = SizeBucketPolicy::RelativeRange { tolerance: tol };
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        let keys: Vec<_> = sorted.iter().map(|&s| policy.bucket(s)).collect();
        for w in keys.windows(2) {
            prop_assert!(w[0] <= w[1], "bucket keys must be monotone");
        }
        // Exact policy is injective.
        let exact = SizeBucketPolicy::Exact;
        for w in sorted.windows(2) {
            if w[0] != w[1] {
                prop_assert!(exact.bucket(w[0]) != exact.bucket(w[1]));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Hints file: save/load round trip is byte-stable
// ---------------------------------------------------------------------

mod hints_roundtrip {
    use super::*;
    use std::time::Duration;
    use versa::core::profile::{apply_hints, parse_hints, render_hints};
    use versa::core::{BucketKey, MeanPolicy, ProfileStore, SizeBucketPolicy, TemplateRegistry};

    /// Version counts per template in [`registry`], indexed by slot.
    pub const TEMPLATES: [(&str, usize); 2] = [("alpha_task", 3), ("beta_task", 2)];

    pub fn registry() -> TemplateRegistry {
        let mut reg = TemplateRegistry::new();
        reg.template("alpha_task")
            .main("alpha_cuda", &[DeviceKind::Cuda])
            .version("alpha_blocked", &[DeviceKind::Smp])
            .version("alpha_naive", &[DeviceKind::Smp])
            .register();
        reg.template("beta_task")
            .main("beta_cuda", &[DeviceKind::Cuda])
            .version("beta_smp", &[DeviceKind::Smp])
            .register();
        reg
    }

    /// (template slot, version pick, bucket, mean_ns, count) — version is
    /// taken modulo the template's version count.
    pub fn hint_entry() -> impl Strategy<Value = (usize, u16, u64, u64, u64)> {
        (0..TEMPLATES.len(), 0u16..8, 0u64..1_000_000, 1u64..1 << 40, 1u64..1000)
    }

    /// (template slot, version pick, bucket, failure streak).
    pub fn quarantine_entry() -> impl Strategy<Value = (usize, u16, u64, u64)> {
        (0..TEMPLATES.len(), 0u16..8, 0u64..1_000_000, 1u64..50)
    }

    pub fn bucket_policy() -> impl Strategy<Value = SizeBucketPolicy> {
        prop_oneof![
            Just(SizeBucketPolicy::Exact),
            (0.01f64..2.0).prop_map(|tolerance| SizeBucketPolicy::RelativeRange { tolerance }),
        ]
    }

    pub fn mean_policy() -> impl Strategy<Value = MeanPolicy> {
        prop_oneof![
            Just(MeanPolicy::Arithmetic),
            (0.01f64..1.0).prop_map(|alpha| MeanPolicy::Ewma { alpha }),
        ]
    }

    /// Build a store holding exactly the given (deduplicated) entries.
    pub fn build_store(
        bucket: SizeBucketPolicy,
        mean: MeanPolicy,
        hints: &[(usize, u16, u64, u64, u64)],
        quarantines: &[(usize, u16, u64, u64)],
        reg: &TemplateRegistry,
    ) -> ProfileStore {
        let mut store = ProfileStore::new(bucket, mean, 3);
        for &(slot, v, bucket, mean_ns, count) in hints {
            let (name, n_versions) = TEMPLATES[slot];
            let tpl = reg.by_name(name).unwrap();
            let version = VersionId(v % n_versions as u16);
            store.seed_bucket(
                tpl,
                n_versions,
                BucketKey(bucket),
                version,
                Duration::from_nanos(mean_ns),
                count,
            );
        }
        for &(slot, v, bucket, failures) in quarantines {
            let (name, n_versions) = TEMPLATES[slot];
            let tpl = reg.by_name(name).unwrap();
            let version = VersionId(v % n_versions as u16);
            store.seed_quarantine(tpl, n_versions, BucketKey(bucket), version, failures);
        }
        store
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 48 })]

        // render → parse → apply-to-fresh-store → render reproduces the
        // original text byte for byte, for any mix of hint and
        // quarantine records under any policy header.
        #[test]
        fn hints_save_load_round_trip_is_byte_stable(
            bucket in bucket_policy(),
            mean in mean_policy(),
            hints in proptest::collection::vec(hint_entry(), 0..20),
            quarantines in proptest::collection::vec(quarantine_entry(), 0..8),
        ) {
            let (mut hints, mut quarantines) = (hints, quarantines);
            // Deduplicate on (template, version, bucket): seeding the
            // same cell twice is last-write-wins, which would make the
            // original store disagree with the file's single record.
            let n_of = |slot: usize| TEMPLATES[slot].1 as u16;
            hints.sort_by_key(|&(s, v, b, ..)| (s, v % n_of(s), b));
            hints.dedup_by_key(|&mut (s, v, b, ..)| (s, v % n_of(s), b));
            quarantines.sort_by_key(|&(s, v, b, _)| (s, v % n_of(s), b));
            quarantines.dedup_by_key(|&mut (s, v, b, _)| (s, v % n_of(s), b));

            let reg = registry();
            let store = build_store(bucket, mean, &hints, &quarantines, &reg);
            let text = render_hints(&store, &reg);

            let file = parse_hints(&text).expect("rendered hints must parse");
            prop_assert_eq!(file.records.len(), hints.len());
            prop_assert_eq!(file.quarantine.len(), quarantines.len());
            let policy = file.policy.expect("v2 files declare their policies");
            prop_assert_eq!(policy.bucket, bucket, "bucket policy survives the header");
            prop_assert_eq!(policy.mean, mean, "mean policy survives the header");

            let mut fresh = ProfileStore::new(bucket, mean, 3);
            let (applied, skipped) =
                apply_hints(&mut fresh, &reg, &file).expect("policies match by construction");
            prop_assert_eq!(applied, hints.len() + quarantines.len());
            prop_assert_eq!(skipped, 0);
            prop_assert_eq!(render_hints(&fresh, &reg), text, "round trip must be byte-stable");
        }

        // Applying a file to a store with different policies must fail:
        // bucket keys/means are only meaningful under the policies that
        // produced them.
        #[test]
        fn hints_policy_mismatch_always_rejected(
            tol_a in 0.01f64..2.0,
            tol_b in 0.01f64..2.0,
            hint in hint_entry(),
        ) {
            if tol_a == tol_b {
                continue;
            }
            let reg = registry();
            let store = build_store(
                SizeBucketPolicy::RelativeRange { tolerance: tol_a },
                MeanPolicy::Arithmetic,
                &[hint],
                &[],
                &reg,
            );
            let file = parse_hints(&render_hints(&store, &reg)).unwrap();
            let mut other = ProfileStore::new(
                SizeBucketPolicy::RelativeRange { tolerance: tol_b },
                MeanPolicy::Arithmetic,
                3,
            );
            prop_assert!(apply_hints(&mut other, &reg, &file).is_err());
        }
    }
}

// ---------------------------------------------------------------------
// Event queue ordering
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn event_queue_pops_sorted_fifo(times in proptest::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, seq)) = q.pop() {
            if let Some((lt, lseq)) = last {
                prop_assert!(t >= lt, "times must be non-decreasing");
                if t == lt {
                    prop_assert!(seq > lseq, "ties must pop FIFO");
                }
            }
            last = Some((t, seq));
        }
    }
}

// ---------------------------------------------------------------------
// Task graph: any completion order of ready tasks drains the graph
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 64 })]

    #[test]
    fn task_graph_always_drains(
        tasks in proptest::collection::vec(gen_task(5), 1..40),
        pick_seed in 0u64..1000,
    ) {
        use versa::core::TaskInstance;
        let mut graph = TaskGraph::new();
        for (i, t) in tasks.iter().enumerate() {
            let mut accesses = Vec::new();
            for &r in &t.reads {
                accesses.push((Region::whole(DataId(r as u32), 64), AccessMode::In));
            }
            for &w in &t.writes {
                accesses.push((Region::whole(DataId(w as u32), 64), AccessMode::InOut));
            }
            graph.submit(TaskInstance {
                id: TaskId(i as u64),
                template: versa::core::TemplateId(0),
                accesses,
                data_set_size: 64,
                job: None,
            });
        }
        // Drain with a pseudo-random ready-task choice.
        let mut state = pick_seed.wrapping_add(1);
        let mut ready: Vec<TaskId> = graph.take_newly_ready();
        let mut done = 0usize;
        while !ready.is_empty() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let pick = (state >> 33) as usize % ready.len();
            let task = ready.swap_remove(pick);
            graph.mark_running(task);
            graph.complete(task, WorkerId(0));
            done += 1;
            ready.extend(graph.take_newly_ready());
        }
        prop_assert_eq!(done, tasks.len(), "graph stalled");
        prop_assert!(graph.all_done());
    }
}
