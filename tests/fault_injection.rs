//! Simulated fault injection: a seeded FaultPlan on the platform fails
//! task executions through the same recovery path native panics take —
//! reschedule, quarantine, bounded retries — fully deterministically.

use std::time::Duration;
use versa::prelude::*;

fn hybrid_sim(plan: FaultPlan) -> (Runtime, TemplateId, Vec<DataId>) {
    let mut platform = PlatformConfig::minotauro(2, 1);
    platform.faults = plan;
    let mut rt = Runtime::simulated(RuntimeConfig::default(), platform);
    let tpl = rt
        .template("work")
        .main("work_gpu", &[DeviceKind::Cuda])
        .version("work_smp", &[DeviceKind::Smp])
        .register();
    rt.bind_cost(tpl, VersionId(0), |_| Duration::from_millis(2));
    rt.bind_cost(tpl, VersionId(1), |_| Duration::from_millis(20));
    let tiles: Vec<DataId> = (0..30).map(|_| rt.alloc_bytes(100_000)).collect();
    (rt, tpl, tiles)
}

fn run_all(rt: &mut Runtime, tpl: TemplateId, tiles: &[DataId]) -> RunReport {
    for &t in tiles {
        rt.task(tpl).read_write(t).submit();
    }
    rt.run().expect("run failed")
}

#[test]
fn broken_gpu_version_completes_on_smp_with_quarantine() {
    let plan = FaultPlan::single(FaultRule::broken_version(VersionId(0)));
    let (mut rt, tpl, tiles) = hybrid_sim(plan);
    let report = run_all(&mut rt, tpl, &tiles);

    assert_eq!(report.tasks_executed, 30);
    assert_eq!(report.version_counts.get(&(tpl, VersionId(0))), None, "GPU never completes");
    assert_eq!(report.version_counts[&(tpl, VersionId(1))], 30);
    assert!(report.failures.failure_count() >= 2);
    assert_eq!(report.failures.retries, report.failures.failure_count());
    assert!(report.failures.events.iter().all(|f| f.kind == FailureKind::Fault));
    assert_eq!(report.failures.quarantined.len(), 1);
    assert_eq!(report.failures.quarantined[0].version, VersionId(0));
}

#[test]
fn same_seed_and_plan_reproduce_the_run_exactly() {
    let run = || {
        let plan = FaultPlan::single(FaultRule::flaky_worker(WorkerId(2), 0.4));
        let (mut rt, tpl, tiles) = hybrid_sim(plan);
        run_all(&mut rt, tpl, &tiles)
    };
    let a = run();
    let b = run();
    assert!(!a.failures.is_clean(), "the flaky GPU should fire at p=0.4");
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.transfers, b.transfers);
    assert_eq!(a.version_counts, b.version_counts);
    assert_eq!(a.failures.failure_count(), b.failures.failure_count());
    assert_eq!(a.failures.retries, b.failures.retries);
    let key = |r: &RunReport| -> Vec<(u64, u16, u16, u32)> {
        r.failures.events.iter().map(|f| (f.task.0, f.version.0, f.worker.0, f.attempt)).collect()
    };
    assert_eq!(key(&a), key(&b), "failure events replay identically");
}

#[test]
fn empty_plan_is_byte_identical_to_no_plan() {
    let (mut rt_none, tpl_a, tiles_a) = hybrid_sim(FaultPlan::none());
    let a = run_all(&mut rt_none, tpl_a, &tiles_a);
    // A plan that exists but never fires must not perturb the noise
    // stream either: probability-0 rules are short-circuited.
    let plan = FaultPlan::single(FaultRule::flaky_worker(WorkerId(2), 0.0));
    let (mut rt_plan, tpl_b, tiles_b) = hybrid_sim(plan);
    let b = run_all(&mut rt_plan, tpl_b, &tiles_b);
    assert!(a.failures.is_clean() && b.failures.is_clean());
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.transfers, b.transfers);
    assert_eq!(a.version_counts, b.version_counts);
}

#[test]
fn unrecoverable_fault_aborts_with_partial_report() {
    // Every version of the template fails everywhere: retries cannot
    // help and the run must abort with the Fault kind.
    let plan = FaultPlan {
        rules: vec![
            FaultRule::broken_version(VersionId(0)),
            FaultRule::broken_version(VersionId(1)),
        ],
        ..FaultPlan::default()
    };
    let (mut rt, tpl, tiles) = hybrid_sim(plan);
    for &t in &tiles[..3] {
        rt.task(tpl).read_write(t).submit();
    }
    let err = rt.run().expect_err("nothing can complete");
    assert_eq!(err.kind, FailureKind::Fault);
    assert_eq!(err.report.tasks_executed, 0);
    let exhausted = err
        .report
        .failures
        .events
        .iter()
        .filter(|f| f.task == err.task)
        .count();
    assert_eq!(exhausted, 4, "1 attempt + 3 retries for the aborting task");
}

#[test]
fn fault_trace_records_failed_attempts() {
    let plan = FaultPlan::single(FaultRule::broken_version(VersionId(0)));
    let mut platform = PlatformConfig::minotauro(2, 1);
    platform.faults = plan;
    let mut config = RuntimeConfig::default();
    config.tracing.enabled = true;
    let mut rt = Runtime::simulated(config, platform);
    let tpl = rt
        .template("work")
        .main("work_gpu", &[DeviceKind::Cuda])
        .version("work_smp", &[DeviceKind::Smp])
        .register();
    rt.bind_cost(tpl, VersionId(0), |_| Duration::from_millis(2));
    rt.bind_cost(tpl, VersionId(1), |_| Duration::from_millis(20));
    let tiles: Vec<DataId> = (0..10).map(|_| rt.alloc_bytes(50_000)).collect();
    for &t in &tiles {
        rt.task(tpl).read_write(t).submit();
    }
    let report = rt.run().expect("run failed");
    let trace = report.trace.as_ref().expect("trace enabled");

    let analysis = versa::sim::TraceAnalysis::new(trace);
    assert_eq!(analysis.failed_count as u64, report.failures.failure_count());
    assert_eq!(analysis.task_count as u64, report.tasks_executed);
    assert_eq!(analysis.find_overlap(), None, "failed attempts still occupy the worker");

    let csv = versa::sim::analysis::to_csv(trace);
    assert_eq!(
        csv.lines().filter(|l| l.starts_with("failed,")).count() as u64,
        report.failures.failure_count()
    );
}
