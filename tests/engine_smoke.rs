//! End-to-end smoke tests: both engines executing a small multi-version
//! task graph through the full public API.

use std::time::Duration;
use versa::prelude::*;
use versa::runtime::NativeConfig;

/// A hybrid template: fast on GPU, slow on SMP.
fn register_hybrid(rt: &mut Runtime) -> TemplateId {
    rt.template("work")
        .main("work_gpu", &[DeviceKind::Cuda])
        .version("work_smp", &[DeviceKind::Smp])
        .register()
}

#[test]
fn sim_engine_runs_independent_tasks() {
    let mut rt = Runtime::simulated(
        RuntimeConfig::with_scheduler(SchedulerKind::DepAware),
        PlatformConfig::minotauro(2, 2),
    );
    let tpl = register_hybrid(&mut rt);
    rt.bind_cost(tpl, VersionId(0), |_| Duration::from_millis(5));
    rt.bind_cost(tpl, VersionId(1), |_| Duration::from_millis(50));

    let tiles: Vec<DataId> = (0..8).map(|_| rt.alloc_bytes(1_000_000)).collect();
    for &t in &tiles {
        rt.task(tpl).read_write(t).submit();
    }
    let report = rt.run().expect("run failed");
    assert_eq!(report.tasks_executed, 8);
    // Dep-aware only runs the main (GPU) version, split over 2 GPUs:
    // 4 tasks each, ≈ 4 × 5 ms plus transfer time.
    assert_eq!(report.version_counts[&(tpl, VersionId(0))], 8);
    assert!(!report.version_counts.contains_key(&(tpl, VersionId(1))));
    let secs = report.makespan.as_secs_f64();
    assert!(secs > 0.015 && secs < 0.08, "makespan {secs}s out of range");
    // Each tile went in once (inout) and came back at the flush.
    assert_eq!(report.transfers.input_bytes, 8_000_000);
    assert_eq!(report.transfers.output_bytes, 8_000_000);
}

#[test]
fn sim_engine_versioning_learns_and_prefers_gpu() {
    let mut rt =
        Runtime::simulated(RuntimeConfig::default(), PlatformConfig::minotauro(2, 1));
    let tpl = register_hybrid(&mut rt);
    rt.bind_cost(tpl, VersionId(0), |_| Duration::from_millis(2));
    rt.bind_cost(tpl, VersionId(1), |_| Duration::from_millis(200));

    let tiles: Vec<DataId> = (0..100).map(|_| rt.alloc_bytes(10_000)).collect();
    for &t in &tiles {
        rt.task(tpl).read_write(t).submit();
    }
    let report = rt.run().expect("run failed");
    assert_eq!(report.tasks_executed, 100);
    let gpu = report.version_counts[&(tpl, VersionId(0))];
    let smp = report.version_counts.get(&(tpl, VersionId(1))).copied().unwrap_or(0);
    assert_eq!(gpu + smp, 100);
    assert!(gpu > 80, "GPU should dominate (100x faster), got {gpu}");
    assert!(smp >= 3, "learning phase must run the SMP version λ times, got {smp}");
    assert!(report.profile_table.is_some());
}

#[test]
fn sim_engine_is_deterministic() {
    let run = || {
        let mut rt =
            Runtime::simulated(RuntimeConfig::default(), PlatformConfig::minotauro(4, 2));
        let tpl = register_hybrid(&mut rt);
        rt.bind_cost(tpl, VersionId(0), Duration::from_nanos);
        rt.bind_cost(tpl, VersionId(1), |s| Duration::from_nanos(20 * s));
        let tiles: Vec<DataId> = (0..40).map(|_| rt.alloc_bytes(500_000)).collect();
        for chunk in tiles.chunks(2) {
            rt.task(tpl).read(chunk[0]).read_write(chunk[1]).submit();
        }
        rt.run().expect("run failed")
    };
    let a = run();
    let b = run();
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.transfers, b.transfers);
    assert_eq!(a.version_counts, b.version_counts);
    assert_eq!(a.worker_task_counts, b.worker_task_counts);
}

#[test]
fn native_engine_computes_real_results_with_dependencies() {
    let mut rt = Runtime::native(
        RuntimeConfig::with_scheduler(SchedulerKind::versioning()),
        NativeConfig::new(2, 1),
    );
    let tpl = rt
        .template("scale_add")
        .main("scale_add_gpu", &[DeviceKind::Cuda])
        .version("scale_add_smp", &[DeviceKind::Smp])
        .register();
    // Both versions: arg0 = input, arg1 = inout; y[i] += 2 * x[i].
    let kernel = |ctx: &mut versa::runtime::KernelCtx<'_>| {
        let x: Vec<f64> = ctx.f64(0).to_vec();
        let y = ctx.f64_mut(1);
        for (yi, xi) in y.iter_mut().zip(&x) {
            *yi += 2.0 * xi;
        }
    };
    rt.bind_native(tpl, VersionId(0), kernel);
    rt.bind_native(tpl, VersionId(1), kernel);

    let x = rt.alloc_from_f64(&[1.0, 2.0, 3.0, 4.0]);
    let y = rt.alloc_from_f64(&[10.0, 10.0, 10.0, 10.0]);
    // Chain of 5 dependent updates: y += 2x, five times.
    for _ in 0..5 {
        rt.task(tpl).read(x).read_write(y).submit();
    }
    let report = rt.run().expect("run failed");
    assert_eq!(report.tasks_executed, 5);
    assert_eq!(rt.read_f64(y), vec![20.0, 30.0, 40.0, 50.0]);
    assert_eq!(rt.read_f64(x), vec![1.0, 2.0, 3.0, 4.0]);
}

#[test]
fn native_engine_handles_wide_fanout() {
    let mut rt = Runtime::native(
        RuntimeConfig::with_scheduler(SchedulerKind::Affinity),
        NativeConfig::new(3, 2),
    );
    let tpl = rt
        .template("fill")
        .main("fill_any", &[DeviceKind::Smp, DeviceKind::Cuda])
        .register();
    rt.bind_native(tpl, VersionId(0), |ctx| {
        let out = ctx.f64_mut(0);
        for (i, v) in out.iter_mut().enumerate() {
            *v = i as f64;
        }
    });
    let outs: Vec<DataId> = (0..32).map(|_| rt.alloc_bytes(8 * 16)).collect();
    for &o in &outs {
        rt.task(tpl).write(o).submit();
    }
    let report = rt.run().expect("run failed");
    assert_eq!(report.tasks_executed, 32);
    for &o in &outs {
        let v = rt.read_f64(o);
        assert_eq!(v, (0..16).map(|i| i as f64).collect::<Vec<_>>());
    }
    // Work was spread over multiple workers.
    let busy_workers = report.worker_task_counts.iter().filter(|&&c| c > 0).count();
    assert!(busy_workers >= 2, "expected parallelism, got {:?}", report.worker_task_counts);
}

#[test]
fn native_kernel_panic_surfaces_as_run_error_not_process_panic() {
    // Every version of the only template panics, so retries cannot help:
    // the run must end in a RunError (not a process panic or deadlock).
    let mut rt = Runtime::native(
        RuntimeConfig::with_scheduler(SchedulerKind::DepAware),
        NativeConfig::new(1, 1),
    );
    let tpl = rt
        .template("bad")
        .main("bad_any", &[DeviceKind::Smp, DeviceKind::Cuda])
        .register();
    rt.bind_native(tpl, VersionId(0), |_ctx| panic!("kernel exploded"));
    let d = rt.alloc_bytes(64);
    let task = rt.task(tpl).read_write(d).submit();
    let err = rt.run().expect_err("unrecoverable kernel must abort the run");
    assert_eq!(err.task, task);
    assert!(err.message.contains("kernel exploded"), "got: {}", err.message);
    // The default budget allows 3 retries: 4 attempts total, all failed.
    assert_eq!(err.report.failures.failure_count(), 4);
    assert_eq!(err.report.failures.retries, 3);
    assert_eq!(err.report.tasks_executed, 0);
}

#[test]
fn noflush_leaves_data_on_the_devices() {
    let build = |rt: &mut Runtime| {
        let tpl = register_hybrid(rt);
        rt.bind_cost(tpl, VersionId(0), |_| Duration::from_millis(1));
        rt.bind_cost(tpl, VersionId(1), |_| Duration::from_millis(100));
        let d = rt.alloc_bytes(1_000_000);
        for _ in 0..5 {
            rt.task(tpl).read_write(d).submit();
        }
        (tpl, d)
    };
    // With the flush: the result comes home (Output Tx > 0).
    let mut rt = Runtime::simulated(
        RuntimeConfig::with_scheduler(SchedulerKind::DepAware),
        PlatformConfig::minotauro(1, 1),
    );
    build(&mut rt);
    let flushed = rt.run().expect("run failed");
    assert_eq!(flushed.transfers.output_bytes, 1_000_000);

    // taskwait(noflush): data stays on the GPU...
    let mut rt2 = Runtime::simulated(
        RuntimeConfig::with_scheduler(SchedulerKind::DepAware),
        PlatformConfig::minotauro(1, 1),
    );
    let (tpl2, d2) = build(&mut rt2);
    let noflush = rt2.run_noflush().expect("run failed");
    assert_eq!(noflush.transfers.output_bytes, 0);
    assert!(noflush.makespan < flushed.makespan);

    // ...so a second batch reuses it without any new Input Tx, and a
    // plain run() at the end still flushes.
    for _ in 0..3 {
        rt2.task(tpl2).read_write(d2).submit();
    }
    let second = rt2.run().expect("run failed");
    assert_eq!(second.transfers.input_bytes, 0, "device copy was reused");
    assert_eq!(second.transfers.output_bytes, 1_000_000, "final taskwait flushes");
}

#[test]
fn state_persists_across_runs() {
    let mut rt =
        Runtime::simulated(RuntimeConfig::default(), PlatformConfig::minotauro(1, 1));
    let tpl = register_hybrid(&mut rt);
    rt.bind_cost(tpl, VersionId(0), |_| Duration::from_millis(1));
    rt.bind_cost(tpl, VersionId(1), |_| Duration::from_millis(30));
    let d = rt.alloc_bytes(1000);
    for _ in 0..10 {
        rt.task(tpl).read_write(d).submit();
    }
    let first = rt.run().expect("run failed");
    assert_eq!(first.tasks_executed, 10);
    // Second run: the profile store remembers; learning is already done.
    for _ in 0..10 {
        rt.task(tpl).read_write(d).submit();
    }
    let second = rt.run().expect("run failed");
    assert_eq!(second.tasks_executed, 10);
    let gpu_second = second.version_counts[&(tpl, VersionId(0))];
    assert_eq!(gpu_second, 10, "no re-learning on the second run");
}
