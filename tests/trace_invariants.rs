//! versa-trace integration invariants, checked end-to-end on recorded
//! runs from both engines: every started task reaches exactly one
//! terminal event, per-worker spans never overlap, retry attempts are
//! numbered monotonically, the analysis reconciles *exactly* with the
//! run report, and the Chrome export is schema-valid JSON.

use proptest::prelude::*;
use std::collections::{HashMap, HashSet};
use std::time::Duration;
use versa::apps::matmul::{self, MatmulConfig, MatmulVariant};
use versa::prelude::*;
use versa::runtime::NativeConfig;
use versa::trace::{chrome, invariants, Trace, TraceAnalysis, TraceEvent};
use versa_mem::TransferKind;

fn traced_rc() -> RuntimeConfig {
    let mut rc = RuntimeConfig::with_scheduler(SchedulerKind::versioning());
    rc.tracing.enabled = true;
    rc
}

fn traced_matmul() -> (RunReport, usize) {
    let cfg = MatmulConfig::quick();
    let report = matmul::run_sim_with(
        traced_rc(),
        cfg,
        MatmulVariant::Hybrid,
        PlatformConfig::minotauro(4, 2),
    );
    (report, cfg.task_count())
}

/// The analysis totals must reconcile with the `RunReport` *exactly* —
/// both views count the same underlying events.
fn assert_reconciles(report: &RunReport, trace: &Trace) {
    let a = TraceAnalysis::new(trace);
    assert_eq!(a.dropped, 0, "ring overflow would break reconciliation");
    assert_eq!(a.task_count as u64, report.tasks_executed);
    assert_eq!(a.version_counts, report.version_counts);
    assert_eq!(a.failed_count as u64, report.failures.failure_count());
    assert_eq!(a.transfer_count as u64, report.transfers.total_count());
    let bytes = |k: TransferKind| a.transfer_bytes.get(&k).copied().unwrap_or(0);
    assert_eq!(bytes(TransferKind::Input), report.transfers.input_bytes);
    assert_eq!(bytes(TransferKind::Output), report.transfers.output_bytes);
    assert_eq!(bytes(TransferKind::Device), report.transfers.device_bytes);
    for (wi, &busy) in report.worker_busy.iter().enumerate() {
        let traced = a.busy.get(&WorkerId(wi as u16)).copied().unwrap_or(Duration::ZERO);
        assert_eq!(traced, busy, "worker {wi} busy time diverges from the report");
    }
}

#[test]
fn sim_trace_passes_all_invariants_and_reconciles() {
    let (report, tasks) = traced_matmul();
    let trace = report.trace.as_ref().expect("trace requested");
    let violations = invariants::check(trace);
    assert!(violations.is_empty(), "invariant violations: {violations:?}");
    assert_reconciles(&report, trace);
    let a = TraceAnalysis::new(trace);
    assert_eq!(a.task_count, tasks);
    assert_eq!(a.find_overlap(), None);
    assert!(!a.decisions.is_empty(), "versioning runs must leave a decision ledger");
    assert_eq!(a.decisions.len() as u64, report.tasks_executed + a.failed_count as u64);
}

#[test]
fn dependent_tasks_do_not_overlap() {
    // A pure chain: task i+1 reads/writes what task i wrote, so traced
    // intervals must be totally ordered.
    let mut rt = Runtime::simulated(traced_rc(), PlatformConfig::minotauro(2, 1));
    let tpl = rt
        .template("step")
        .main("step_gpu", &[DeviceKind::Cuda])
        .version("step_smp", &[DeviceKind::Smp])
        .register();
    rt.bind_cost(tpl, VersionId(0), |_| Duration::from_millis(2));
    rt.bind_cost(tpl, VersionId(1), |_| Duration::from_millis(5));
    let d = rt.alloc_bytes(1 << 16);
    let ids: Vec<_> = (0..40).map(|_| rt.task(tpl).read_write(d).submit()).collect();
    let report = rt.run().expect("run failed");
    let trace = report.trace.as_ref().unwrap();

    let mut ends = HashMap::new();
    let mut starts = HashMap::new();
    for ev in trace.events() {
        match *ev {
            TraceEvent::TaskStart { time, task, .. } => {
                starts.insert(task, time);
            }
            TraceEvent::TaskEnd { time, task, .. } => {
                ends.insert(task, time);
            }
            _ => {}
        }
    }
    for pair in ids.windows(2) {
        let end_prev = ends[&pair[0]];
        let start_next = starts[&pair[1]];
        assert!(
            start_next >= end_prev,
            "{:?} started at {start_next:?} before {:?} ended at {end_prev:?}",
            pair[1],
            pair[0]
        );
    }
}

#[test]
fn chrome_export_is_schema_valid() {
    let (report, tasks) = traced_matmul();
    let trace = report.trace.as_ref().unwrap();
    let json = chrome::to_chrome_json(trace);
    chrome::validate(&json).expect("chrome export must be schema-valid");
    // Golden structural facts: the container key, one complete ("X")
    // event per executed attempt, and instant events for decisions.
    assert!(json.contains("\"traceEvents\""));
    assert!(json.matches("\"ph\":\"X\"").count() >= tasks);
    assert!(json.contains("\"ph\":\"i\""), "decisions export as instants");
}

#[test]
fn vtrace_text_roundtrips() {
    let (report, _) = traced_matmul();
    let trace = report.trace.as_ref().unwrap();
    let text = trace.to_text();
    let parsed = Trace::parse(&text).expect("self-emitted vtrace must parse");
    assert_eq!(parsed.events().len(), trace.events().len());
    let a = TraceAnalysis::new(trace);
    let b = TraceAnalysis::new(&parsed);
    assert_eq!(a.task_count, b.task_count);
    assert_eq!(a.version_counts, b.version_counts);
    assert_eq!(a.busy, b.busy);
}

#[test]
fn tracing_disabled_keeps_report_trace_empty() {
    let cfg = MatmulConfig::quick();
    let report = matmul::run_sim(
        cfg,
        MatmulVariant::Gpu,
        SchedulerKind::DepAware,
        PlatformConfig::minotauro(1, 1),
    );
    assert!(report.trace.is_none());
}

/// The same program traced on both engines produces the same event
/// *shape*: identical completed-task sets, per-task lifecycle counts,
/// clean invariants, and non-empty decision ledgers. (Timing and
/// placement legitimately differ.)
#[test]
fn native_and_sim_traces_have_the_same_event_shape() {
    let cfg = MatmulConfig { n: 96, bs: 32 };
    let sim = matmul::run_sim_with(
        traced_rc(),
        cfg,
        MatmulVariant::Hybrid,
        PlatformConfig::minotauro(2, 1),
    );
    let (native, _data) = matmul::run_native_with(
        traced_rc(),
        cfg,
        MatmulVariant::Hybrid,
        NativeConfig::new(2, 1),
        7,
    );

    let shape = |report: &RunReport| {
        let trace = report.trace.as_ref().expect("trace requested");
        let violations = invariants::check(trace);
        assert!(violations.is_empty(), "invariant violations: {violations:?}");
        assert_reconciles(report, trace);
        let mut created = HashSet::new();
        let mut ready = HashSet::new();
        let mut ended = HashSet::new();
        let mut decisions = 0usize;
        for ev in trace.events() {
            match *ev {
                TraceEvent::TaskCreated { task, .. } => {
                    created.insert(task);
                }
                TraceEvent::TaskReady { task, .. } => {
                    ready.insert(task);
                }
                TraceEvent::TaskEnd { task, .. } => {
                    ended.insert(task);
                }
                TraceEvent::Decision(_) => decisions += 1,
                _ => {}
            }
        }
        assert!(decisions > 0, "versioning runs must leave a decision ledger");
        assert!(ended.is_subset(&created), "every ended task was announced");
        assert!(ended.is_subset(&ready), "every ended task became ready");
        ended
    };

    let sim_tasks = shape(&sim);
    let native_tasks = shape(&native);
    assert_eq!(sim_tasks, native_tasks, "both engines execute the same task set");
    assert_eq!(sim_tasks.len(), cfg.task_count());
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12 })]

    // Completeness under injected faults: whatever the fault pattern,
    // the trace keeps its invariants (exactly one terminal per started
    // attempt, monotonic attempt numbers, non-overlapping worker
    // spans) and failed counts reconcile with the report.
    #[test]
    fn faulty_runs_keep_trace_invariants(
        tasks in 1usize..30,
        flaky_worker in 0u16..3,
        p in 0.0f64..0.6,
        chain in (0u8..2).prop_map(|b| b == 1),
    ) {
        let plan = FaultPlan::single(FaultRule::flaky_worker(WorkerId(flaky_worker), p));
        let mut platform = PlatformConfig::minotauro(2, 1);
        platform.faults = plan;
        let mut rt = Runtime::simulated(traced_rc(), platform);
        let tpl = rt
            .template("work")
            .main("work_gpu", &[DeviceKind::Cuda])
            .version("work_smp", &[DeviceKind::Smp])
            .register();
        rt.bind_cost(tpl, VersionId(0), |_| Duration::from_millis(2));
        rt.bind_cost(tpl, VersionId(1), |_| Duration::from_millis(9));
        let shared = rt.alloc_bytes(64 << 10);
        let tiles: Vec<DataId> = (0..tasks).map(|_| rt.alloc_bytes(32 << 10)).collect();
        for &t in &tiles {
            if chain {
                rt.task(tpl).read_write(shared).submit();
            } else {
                rt.task(tpl).read_write(t).submit();
            }
        }
        let report = match rt.run() {
            Ok(r) => r,
            Err(e) => *e.report,
        };
        let trace = report.trace.as_ref().expect("trace requested");
        let violations = invariants::check(trace);
        prop_assert!(violations.is_empty(), "invariant violations: {violations:?}");
        let a = TraceAnalysis::new(trace);
        prop_assert_eq!(a.failed_count as u64, report.failures.failure_count());
        prop_assert_eq!(a.task_count as u64, report.tasks_executed);
        prop_assert!(a.find_overlap().is_none());
    }
}
