//! Simulator-correctness invariants checked on recorded traces:
//! no worker ever overlaps two tasks, dependent tasks never overlap,
//! and the analysis/CSV utilities agree with the run report.

use std::time::Duration;
use versa::apps::matmul::{self, MatmulConfig, MatmulVariant};
use versa::prelude::*;
use versa::sim::{analysis, TraceAnalysis, TraceEvent};

fn traced_matmul() -> (RunReport, usize) {
    let cfg = MatmulConfig::quick();
    let mut rc = RuntimeConfig::with_scheduler(SchedulerKind::versioning());
    rc.trace = true;
    let mut rt = Runtime::simulated(rc, PlatformConfig::minotauro(4, 2));
    let _app = matmul::build(&mut rt, cfg, MatmulVariant::Hybrid);
    (rt.run().expect("run failed"), cfg.task_count())
}

#[test]
fn workers_never_run_two_tasks_at_once() {
    let (report, tasks) = traced_matmul();
    let trace = report.trace.as_ref().expect("trace requested");
    let a = TraceAnalysis::new(trace);
    assert_eq!(a.task_count, tasks);
    assert_eq!(a.find_overlap(), None, "a worker executed two tasks simultaneously");
}

#[test]
fn trace_agrees_with_the_report() {
    let (report, _) = traced_matmul();
    let trace = report.trace.as_ref().unwrap();
    let a = TraceAnalysis::new(trace);
    assert_eq!(a.task_count as u64, report.tasks_executed);
    assert_eq!(a.transfer_count as u64, report.transfers.total_count());
    // The last traced event cannot exceed the makespan (flush may extend
    // the makespan beyond the last compute event).
    assert!(a.span.as_duration() <= report.makespan);
    // Utilizations are sane and someone actually worked.
    let total_util: f64 =
        a.busy.keys().map(|&w| a.utilization(w)).sum();
    assert!(total_util > 0.5, "net utilization implausibly low");
    for &w in a.busy.keys() {
        let u = a.utilization(w);
        assert!((0.0..=1.0 + 1e-9).contains(&u), "utilization {u} out of range");
    }
}

#[test]
fn dependent_tasks_do_not_overlap() {
    // A pure chain: task i+1 reads/writes what task i wrote, so traced
    // intervals must be totally ordered.
    let mut rc = RuntimeConfig::with_scheduler(SchedulerKind::versioning());
    rc.trace = true;
    let mut rt = Runtime::simulated(rc, PlatformConfig::minotauro(2, 1));
    let tpl = rt
        .template("step")
        .main("step_gpu", &[DeviceKind::Cuda])
        .version("step_smp", &[DeviceKind::Smp])
        .register();
    rt.bind_cost(tpl, VersionId(0), |_| Duration::from_millis(2));
    rt.bind_cost(tpl, VersionId(1), |_| Duration::from_millis(5));
    let d = rt.alloc_bytes(1 << 16);
    let ids: Vec<_> = (0..40).map(|_| rt.task(tpl).read_write(d).submit()).collect();
    let report = rt.run().expect("run failed");
    let trace = report.trace.as_ref().unwrap();

    let mut ends = std::collections::HashMap::new();
    let mut starts = std::collections::HashMap::new();
    for ev in trace.events() {
        match *ev {
            TraceEvent::TaskStart { time, task, .. } => {
                starts.insert(task, time);
            }
            TraceEvent::TaskEnd { time, task, .. } => {
                ends.insert(task, time);
            }
            TraceEvent::Transfer { .. } | TraceEvent::TaskFailed { .. } => {}
        }
    }
    for pair in ids.windows(2) {
        let end_prev = ends[&pair[0]];
        let start_next = starts[&pair[1]];
        assert!(
            start_next >= end_prev,
            "{:?} started at {start_next:?} before {:?} ended at {end_prev:?}",
            pair[1],
            pair[0]
        );
    }
}

#[test]
fn csv_export_covers_every_task() {
    let (report, tasks) = traced_matmul();
    let csv = analysis::to_csv(report.trace.as_ref().unwrap());
    let task_lines = csv.lines().filter(|l| l.starts_with("task,")).count();
    assert_eq!(task_lines, tasks);
    let transfer_lines = csv.lines().filter(|l| l.starts_with("transfer,")).count();
    assert_eq!(transfer_lines as u64, report.transfers.total_count());
}

#[test]
fn trace_is_absent_unless_requested() {
    let cfg = MatmulConfig::quick();
    let report = matmul::run_sim(
        cfg,
        MatmulVariant::Gpu,
        SchedulerKind::DepAware,
        PlatformConfig::minotauro(1, 1),
    );
    assert!(report.trace.is_none());
}
