//! Native-engine failure semantics: kernel panics are recoverable
//! events — the task is rolled back and rescheduled, the failing
//! version is quarantined, and only an exhausted retry budget aborts
//! the run (with a coherent partial report).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use versa::prelude::*;
use versa::runtime::NativeConfig;

fn hybrid_runtime() -> Runtime {
    Runtime::native(
        RuntimeConfig::with_scheduler(SchedulerKind::versioning()),
        NativeConfig::new(2, 1),
    )
}

/// A panicking GPU version with a correct SMP fallback: every task must
/// still complete, with correct numerics, the GPU version quarantined,
/// and every failure accounted.
#[test]
fn panicking_version_is_rescheduled_and_quarantined() {
    let mut rt = hybrid_runtime();
    let tpl = rt
        .template("scale")
        .main("scale_gpu", &[DeviceKind::Cuda])
        .version("scale_smp", &[DeviceKind::Smp])
        .register();
    let gpu_attempts = Arc::new(AtomicU64::new(0));
    let counter = Arc::clone(&gpu_attempts);
    rt.bind_native(tpl, VersionId(0), move |_ctx| {
        counter.fetch_add(1, Ordering::SeqCst);
        panic!("emulated device fault");
    });
    rt.bind_native(tpl, VersionId(1), |ctx| {
        for v in ctx.f64_mut(0) {
            *v *= 3.0;
        }
    });

    let tiles: Vec<DataId> = (0..12).map(|i| rt.alloc_from_f64(&[i as f64; 8])).collect();
    for &t in &tiles {
        rt.task(tpl).read_write(t).submit();
    }
    let report = rt.run().expect("SMP fallback must carry the run");

    assert_eq!(report.tasks_executed, 12);
    // Every completed execution used the SMP version; the GPU version
    // only shows up in the failure log.
    assert_eq!(report.version_counts.get(&(tpl, VersionId(0))), None);
    assert_eq!(report.version_counts[&(tpl, VersionId(1))], 12);
    assert!(gpu_attempts.load(Ordering::SeqCst) >= 1, "GPU version was tried at least once");
    assert_eq!(
        report.failures.failure_count(),
        gpu_attempts.load(Ordering::SeqCst),
        "every panic shows up as a TaskFailure event"
    );
    assert_eq!(report.failures.retries, report.failures.failure_count());
    assert!(report.failures.events.iter().all(|f| {
        f.kind == FailureKind::Panic
            && f.version == VersionId(0)
            && f.message.contains("emulated device fault")
    }));
    // Two consecutive failures quarantine the GPU version for this size
    // group, so the scheduler routes around it.
    assert_eq!(report.failures.quarantined.len(), 1);
    let q = &report.failures.quarantined[0];
    assert_eq!((q.template, q.version), (tpl, VersionId(0)));
    assert!(q.failures >= 2);

    // Numerics survived the rollback: the panicked attempts left the
    // buffers untouched (arena unwind guard), so each tile was scaled
    // exactly once.
    for (i, &t) in tiles.iter().enumerate() {
        assert_eq!(rt.read_f64(t), vec![i as f64 * 3.0; 8]);
    }
}

/// Exhausting the retry budget aborts with a RunError whose partial
/// report stays coherent: successes before the abort are counted, every
/// failed attempt is logged, nothing panics out of `run()`.
#[test]
fn retry_exhaustion_yields_coherent_partial_report() {
    let mut rt = hybrid_runtime();
    let good = rt.template("good").main("good_smp", &[DeviceKind::Smp]).register();
    let bad = rt
        .template("bad")
        .main("bad_any", &[DeviceKind::Smp, DeviceKind::Cuda])
        .register();
    rt.bind_native(good, VersionId(0), |ctx| {
        for v in ctx.f64_mut(0) {
            *v += 1.0;
        }
    });
    rt.bind_native(bad, VersionId(0), |_ctx| panic!("always down"));

    let a = rt.alloc_from_f64(&[0.0; 4]);
    let b = rt.alloc_from_f64(&[0.0; 4]);
    // The good task has no dependence on the bad one, so it completes.
    let good_task = rt.task(good).read_write(a).submit();
    let bad_task = rt.task(bad).read_write(b).submit();

    let err = rt.run().expect_err("single-version panicking task must abort");
    assert_eq!(err.task, bad_task);
    assert_eq!(err.kind, FailureKind::Panic);
    assert!(err.message.contains("always down"));

    let report = &err.report;
    assert_eq!(report.tasks_executed, 1, "the good task completed before the abort");
    assert_eq!(report.version_counts[&(good, VersionId(0))], 1);
    assert_eq!(report.failures.failure_count(), 4, "1 attempt + 3 retries");
    assert_eq!(report.failures.retries, 3);
    assert!(report.failures.events.iter().all(|f| f.task == bad_task));
    let _ = good_task;
}

/// `max_task_retries = 0` means fail-fast: the first panic aborts.
#[test]
fn zero_retry_budget_fails_fast() {
    let mut config = RuntimeConfig::with_scheduler(SchedulerKind::DepAware);
    config.max_task_retries = 0;
    let mut rt = Runtime::native(config, NativeConfig::new(1, 0));
    let tpl = rt.template("bad").main("bad_smp", &[DeviceKind::Smp]).register();
    rt.bind_native(tpl, VersionId(0), |_ctx| panic!("boom"));
    let d = rt.alloc_bytes(32);
    rt.task(tpl).read_write(d).submit();
    let err = rt.run().expect_err("no retries allowed");
    assert_eq!(err.report.failures.failure_count(), 1);
    assert_eq!(err.report.failures.retries, 0);
}
