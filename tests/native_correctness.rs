//! End-to-end numerical correctness: the paper's applications executed
//! by the native engine (real threads, real transfers between per-device
//! arenas, real kernels) must produce the same results as serial
//! reference computations — under every scheduler, since scheduling must
//! never change semantics.

use versa_apps::cholesky::{self, CholeskyConfig, CholeskyVariant};
use versa_apps::matmul::{self, MatmulConfig, MatmulVariant};
use versa_apps::pbpi::{self, PbpiConfig, PbpiVariant};
use versa_core::SchedulerKind;
use versa_runtime::NativeConfig;

const MM_SMALL: MatmulConfig = MatmulConfig { n: 192, bs: 48 }; // 4×4 tiles, 64 tasks
const CHOL_SMALL: CholeskyConfig = CholeskyConfig { n: 192, bs: 48 };

#[test]
fn native_matmul_hybrid_versioning_is_correct() {
    let (report, data) = matmul::run_native(
        MM_SMALL,
        MatmulVariant::Hybrid,
        SchedulerKind::versioning(),
        NativeConfig::new(2, 1),
        7,
    );
    assert_eq!(report.tasks_executed as usize, MM_SMALL.task_count());
    assert!(data.max_error() < 1e-9, "max error {}", data.max_error());
}

#[test]
fn native_matmul_correct_under_every_scheduler() {
    for sched in [
        SchedulerKind::DepAware,
        SchedulerKind::Affinity,
        SchedulerKind::versioning(),
        SchedulerKind::locality_versioning(),
    ] {
        let label = sched.label();
        let variant = if matches!(sched, SchedulerKind::Versioning(_)) {
            MatmulVariant::Hybrid
        } else {
            MatmulVariant::Gpu
        };
        let (_report, data) =
            matmul::run_native(MM_SMALL, variant, sched, NativeConfig::new(2, 2), 11);
        assert!(data.max_error() < 1e-9, "scheduler {label}: max error {}", data.max_error());
    }
}

#[test]
fn native_cholesky_hybrid_versioning_is_correct() {
    let (report, data) = cholesky::run_native(
        CHOL_SMALL,
        CholeskyVariant::PotrfHybrid,
        SchedulerKind::versioning(),
        NativeConfig::new(2, 1),
        3,
    );
    let nb = CHOL_SMALL.nb();
    let expected = nb + nb * (nb - 1) + nb * (nb - 1) * (nb - 2) / 6;
    assert_eq!(report.tasks_executed as usize, expected);
    // f32 SPD of size 192: reconstruction error stays small.
    assert!(data.max_error() < 0.5, "L·Lᵀ deviates by {}", data.max_error());
}

#[test]
fn native_cholesky_gpu_variant_matches_smp_variant() {
    let (_r1, d1) = cholesky::run_native(
        CHOL_SMALL,
        CholeskyVariant::PotrfGpu,
        SchedulerKind::Affinity,
        NativeConfig::new(1, 2),
        3,
    );
    let (_r2, d2) = cholesky::run_native(
        CHOL_SMALL,
        CholeskyVariant::PotrfSmp,
        SchedulerKind::DepAware,
        NativeConfig::new(2, 1),
        3,
    );
    // Same input (same seed) → same factor, regardless of which device
    // computed each tile.
    for (t1, t2) in d1.factor.iter().zip(&d2.factor) {
        for (a, b) in t1.iter().zip(t2) {
            assert!((a - b).abs() < 1e-2, "factor tiles diverge: {a} vs {b}");
        }
    }
}

#[test]
fn native_pbpi_loglik_matches_serial_reference() {
    let cfg = PbpiConfig { chunks: 3, sites_per_chunk: 512, generations: 4 };
    for variant in [PbpiVariant::Smp, PbpiVariant::Gpu, PbpiVariant::Hybrid] {
        let sched = match variant {
            PbpiVariant::Hybrid => SchedulerKind::versioning(),
            _ => SchedulerKind::Affinity,
        };
        let (report, ll) = pbpi::run_native(cfg, variant, sched, NativeConfig::new(2, 1));
        assert_eq!(report.tasks_executed as usize, cfg.tasks_per_generation() * cfg.generations);
        let expect = pbpi::native_reference_ll(cfg);
        assert!(
            (ll - expect).abs() < 1e-6 * expect.abs(),
            "{}: ll {ll} != reference {expect}",
            variant.label()
        );
    }
}

#[test]
fn native_matmul_gpu_lanes_accelerate_the_emulated_gpu() {
    // Sanity on the GPU emulation: with 4 lanes, the emulated device
    // really computes the parallel kernel; results stay identical.
    let (_, d1) = matmul::run_native(
        MM_SMALL,
        MatmulVariant::Gpu,
        SchedulerKind::DepAware,
        NativeConfig { smp_workers: 0, gpus: 1, gpu_lanes: 4, link_bandwidth: None },
        21,
    );
    let (_, d2) = matmul::run_native(
        MM_SMALL,
        MatmulVariant::Gpu,
        SchedulerKind::DepAware,
        NativeConfig { smp_workers: 0, gpus: 1, gpu_lanes: 1, link_bandwidth: None },
        21,
    );
    for (t1, t2) in d1.c.iter().zip(&d2.c) {
        assert_eq!(t1, t2, "lane count must not change results");
    }
}
