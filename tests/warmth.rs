//! Regression: profiles learned by one `run()` must carry over to the
//! next `run()` on the same [`Runtime`] — re-entering the versioning
//! scheduler's learning phase on every run would defeat the whole point
//! of a persistent runtime (and of the `versa-serve` layer built on it).

use std::time::Duration;
use versa::core::{DeviceKind, SchedulerKind, TaskId, TemplateId, VersionId};
use versa::runtime::Runtime;
use versa::runtime::RuntimeConfig;
use versa::sim::PlatformConfig;

/// Three versions with a strict speed order: fast GPU main (1 ms), a
/// slower GPU alternate (2 ms), and a slow SMP fallback (20 ms). Once
/// the scheduler has reliable profiles, the alternate GPU version can
/// never win a bid — the main version beats it on every worker — so any
/// execution of it is proof the scheduler was (still) learning.
fn versioning_runtime() -> (Runtime, TemplateId) {
    let mut rt = Runtime::simulated(
        RuntimeConfig::with_scheduler(SchedulerKind::versioning()),
        PlatformConfig::minotauro(2, 1),
    );
    let tpl = rt
        .template("mm")
        .main("mm_cublas", &[DeviceKind::Cuda])
        .version("mm_cuda", &[DeviceKind::Cuda])
        .version("mm_cblas", &[DeviceKind::Smp])
        .register();
    rt.bind_cost(tpl, VersionId(0), |_| Duration::from_millis(1));
    rt.bind_cost(tpl, VersionId(1), |_| Duration::from_millis(2));
    rt.bind_cost(tpl, VersionId(2), |_| Duration::from_millis(20));
    (rt, tpl)
}

/// Submit `tasks` independent same-size tasks and return their ids.
fn submit_batch(rt: &mut Runtime, tpl: TemplateId, tasks: usize) -> Vec<TaskId> {
    (0..tasks)
        .map(|_| {
            let d = rt.alloc_bytes(1 << 16);
            rt.task(tpl).read_write(d).submit()
        })
        .collect()
}

/// How many of `ids` executed as `version` (from the graph's recorded
/// assignments).
fn version_count(rt: &Runtime, ids: &[TaskId], version: VersionId) -> usize {
    ids.iter()
        .filter(|&&id| {
            rt.graph().node(id).assignment.map(|a| a.version) == Some(version)
        })
        .count()
}

#[test]
fn second_run_does_not_reenter_learning() {
    let (mut rt, tpl) = versioning_runtime();

    // First run: the scheduler knows nothing, so learning round-robins
    // every version at least λ = 3 times — including the alternate GPU
    // version that can never win a bid afterwards.
    let first = submit_batch(&mut rt, tpl, 64);
    rt.run().expect("first run failed");
    assert!(
        version_count(&rt, &first, VersionId(1)) >= 3,
        "the first run should pay the learning phase"
    );

    // Second run on the *same* runtime: the profiles learned above make
    // the group reliable, so the alternate version must never run again.
    let second = submit_batch(&mut rt, tpl, 64);
    rt.run().expect("second run failed");
    assert_eq!(
        version_count(&rt, &second, VersionId(1)),
        0,
        "the second run re-entered the learning phase"
    );
    // The slow SMP fallback may still run when the GPU queue is long
    // enough — but every one of the second batch's tasks ran *something*.
    assert_eq!(
        second.iter().filter(|&&id| rt.graph().node(id).assignment.is_some()).count(),
        64
    );
}

#[test]
fn second_run_skips_learning_even_after_hints_round_trip() {
    // Same property across a save/load boundary: a fresh runtime seeded
    // with the first runtime's saved hints starts reliable.
    let (mut rt, tpl) = versioning_runtime();
    let first = submit_batch(&mut rt, tpl, 64);
    rt.run().expect("first run failed");
    assert!(version_count(&rt, &first, VersionId(1)) >= 3);
    let hints = rt.save_hints().expect("versioning scheduler saves hints");

    let (mut rt2, tpl2) = versioning_runtime();
    let (applied, _skipped) = rt2.load_hints(&hints).expect("hints load cleanly");
    assert!(applied >= 3, "one record per version with data");
    let batch = submit_batch(&mut rt2, tpl2, 64);
    rt2.run().expect("warm run failed");
    assert_eq!(
        version_count(&rt2, &batch, VersionId(1)),
        0,
        "a hint-seeded runtime re-entered the learning phase"
    );
}
