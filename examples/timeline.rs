//! Execution-trace analysis: record a structured trace of a simulated
//! Cholesky run and print per-worker utilization plus an ASCII timeline
//! (the kind of view BSC engineers would pull from Paraver). Also writes
//! a CSV timeline for external tools.
//!
//! ```text
//! cargo run --release --example timeline
//! ```

use versa::apps::cholesky::{self, CholeskyConfig, CholeskyVariant};
use versa::prelude::*;
use versa::sim::{analysis, SimTime, TraceAnalysis};

fn main() {
    let cfg = CholeskyConfig { n: 8192, bs: 1024 };
    let mut rc = RuntimeConfig::with_scheduler(SchedulerKind::versioning());
    rc.tracing.enabled = true;
    let mut rt = Runtime::simulated(rc, PlatformConfig::minotauro(4, 2));
    let _app = cholesky::build(&mut rt, cfg, CholeskyVariant::PotrfHybrid);
    let report = rt.run().expect("run failed");
    let trace = report.trace.as_ref().expect("trace requested");
    let a = TraceAnalysis::new(trace);

    println!(
        "cholesky {}x{} (potrf-hyb, versioning): {} tasks, {} transfers, makespan {:.1} ms\n",
        cfg.n,
        cfg.n,
        a.task_count,
        a.transfer_count,
        report.makespan.as_secs_f64() * 1e3
    );
    println!("{}", a.utilization_table());

    // ASCII Gantt: 80 columns across the makespan, one row per worker.
    const COLS: usize = 80;
    let span_ns = report.makespan.as_nanos() as u64;
    let mut workers: Vec<WorkerId> = a.busy.keys().copied().collect();
    workers.sort_unstable();
    println!("timeline ('#' = computing, '.' = idle):");
    for w in workers {
        let mut row = vec!['.'; COLS];
        for iv in a.intervals.iter().filter(|iv| iv.worker == w) {
            let lo = (iv.start.0 as u128 * COLS as u128 / span_ns as u128) as usize;
            let hi = (iv.end.0 as u128 * COLS as u128 / span_ns as u128) as usize;
            for cell in row.iter_mut().take(hi.min(COLS - 1) + 1).skip(lo) {
                *cell = '#';
            }
        }
        println!("  {:<4} {}", w.to_string(), row.into_iter().collect::<String>());
    }
    let _ = SimTime::ZERO; // (SimTime re-exported for library users)

    let csv = analysis::to_csv(trace);
    let path = std::env::temp_dir().join("versa_cholesky_timeline.csv");
    std::fs::write(&path, &csv).expect("write CSV");
    println!("\nfull timeline written to {} ({} rows)", path.display(), csv.lines().count() - 1);
}
