//! Native-engine demonstration: the same multi-version matmul, executed
//! for real — OS worker threads, real copies between per-device memory
//! arenas, real Rust GEMM kernels — with the result verified against a
//! serial reference.
//!
//! ```text
//! cargo run --release --example native_matmul
//! ```

use versa::apps::matmul::{self, MatmulConfig, MatmulVariant};
use versa::prelude::*;
use versa::runtime::NativeConfig;

fn main() {
    let cfg = MatmulConfig { n: 768, bs: 192 }; // 4×4 tiles, 64 real gemm tasks
    println!(
        "native matmul: {}x{} f64, {} tasks, 2 SMP workers + 2 emulated GPUs (4 lanes each)\n",
        cfg.n,
        cfg.n,
        cfg.task_count()
    );

    for sched in [SchedulerKind::Affinity, SchedulerKind::versioning()] {
        let label = sched.label();
        let variant = if matches!(sched, SchedulerKind::Versioning(_)) {
            MatmulVariant::Hybrid
        } else {
            MatmulVariant::Gpu
        };
        let t0 = std::time::Instant::now();
        let (report, data) = matmul::run_native(
            cfg,
            variant,
            sched,
            NativeConfig { smp_workers: 2, gpus: 2, gpu_lanes: 4, link_bandwidth: None },
            42,
        );
        let err = data.max_error();
        println!(
            "{:<8} wall {:>6.0} ms  tasks {:>3}  transfers {:>5.1} MB  max |err| {:.2e}",
            label,
            t0.elapsed().as_secs_f64() * 1e3,
            report.tasks_executed,
            report.transfers.total_bytes() as f64 / 1e6,
            err
        );
        assert!(err < 1e-9, "numerical verification failed");
    }
    println!("\nboth schedulers produce bit-identical-quality results; the versioning");
    println!("scheduler additionally learned real wall-clock kernel times per device.");
}
