//! External profile hints (paper §VII future work): save a learned
//! profile after one run and warm-start a fresh runtime with it, skipping
//! the learning phase entirely.
//!
//! ```text
//! cargo run --example profile_hints
//! ```

use std::time::Duration;
use versa::core::profile::{apply_hints, parse_hints, render_hints};
use versa::prelude::*;

fn build_runtime() -> (Runtime, versa::core::TemplateId, Vec<DataId>) {
    let mut rt = Runtime::simulated(
        RuntimeConfig::with_scheduler(SchedulerKind::versioning()),
        PlatformConfig::minotauro(2, 1),
    );
    let tpl = rt
        .template("filter")
        .main("filter_cuda", &[DeviceKind::Cuda])
        .version("filter_smp", &[DeviceKind::Smp])
        .register();
    rt.bind_cost(tpl, VersionId(0), |_| Duration::from_millis(4));
    rt.bind_cost(tpl, VersionId(1), |_| Duration::from_millis(400));
    let tiles: Vec<DataId> = (0..60).map(|_| rt.alloc_bytes(1 << 18)).collect();
    (rt, tpl, tiles)
}

fn main() {
    // ---- Run 1: cold start; the scheduler must learn. -----------------
    let (mut rt, tpl, tiles) = build_runtime();
    for &t in &tiles {
        rt.task(tpl).read_write(t).submit();
    }
    let cold = rt.run().expect("run failed");
    let slow_runs_cold = cold.version_histogram(tpl, 2)[1];
    println!(
        "cold run : makespan {:.1} ms, slow SMP version ran {} times (learning)",
        cold.makespan.as_secs_f64() * 1e3,
        slow_runs_cold
    );

    // Save what was learned — the paper suggests a file "written by
    // OmpSs runtime from a previous application's execution".
    let hints_text =
        render_hints(rt.versioning().unwrap().profiles(), rt.templates());
    let path = std::env::temp_dir().join("versa_filter.hints");
    std::fs::write(&path, &hints_text).expect("write hints file");
    println!("saved learned profile to {}:\n{hints_text}", path.display());

    // ---- Run 2: warm start from the hints file. -----------------------
    let (mut rt2, tpl2, tiles2) = build_runtime();
    let text = std::fs::read_to_string(&path).expect("read hints file");
    let file = parse_hints(&text).expect("well-formed hints");
    let templates = rt2.templates().clone();
    let (applied, skipped) =
        apply_hints(rt2.versioning_mut().unwrap().profiles_mut(), &templates, &file)
            .expect("hints policies match the scheduler's");
    println!("warm start: applied {applied} hint records ({skipped} skipped)");

    for &t in &tiles2 {
        rt2.task(tpl2).read_write(t).submit();
    }
    let warm = rt2.run().expect("run failed");
    let slow_runs_warm = warm.version_histogram(tpl2, 2)[1];
    println!(
        "warm run : makespan {:.1} ms, slow SMP version ran {} times",
        warm.makespan.as_secs_f64() * 1e3,
        slow_runs_warm
    );
    assert!(slow_runs_cold >= 3, "cold run must pay the λ learning executions");
    assert_eq!(slow_runs_warm, 0, "hints should skip the learning phase entirely");
    println!("\nthe warm-started scheduler goes straight to the earliest-executor phase.");
}
