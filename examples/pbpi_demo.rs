//! PBPI — Bayesian phylogenetic inference (paper §V-B3). The case where
//! blindly offloading to the GPU *loses*: loop 3 runs on the host every
//! generation, so pbpi-gpu pays transfers both ways, while the
//! versioning scheduler finds the profitable split.
//!
//! ```text
//! cargo run --release --example pbpi_demo
//! ```

use versa::apps::pbpi::{self, PbpiConfig, PbpiVariant};
use versa::prelude::*;

fn main() {
    let cfg = PbpiConfig::paper();
    println!(
        "pbpi: {} sites x {} generations, {} chunks ({} tasks/generation)\n",
        cfg.sites(),
        cfg.generations,
        cfg.chunks,
        cfg.tasks_per_generation()
    );
    println!(
        "{:<10} {:>10} {:>10} {:>10}   {:<24}",
        "config", "smp (s)", "gpu (s)", "hyb (s)", "loop2 split cuda/smp"
    );

    for gpus in [1usize, 2] {
        for smp in [2usize, 8] {
            let platform = || PlatformConfig::minotauro(smp, gpus);
            let s = pbpi::run_sim(cfg, PbpiVariant::Smp, SchedulerKind::DepAware, platform());
            let g = pbpi::run_sim(cfg, PbpiVariant::Gpu, SchedulerKind::Affinity, platform());
            let mut rt = Runtime::simulated(
                RuntimeConfig::with_scheduler(SchedulerKind::versioning()),
                platform(),
            );
            let app = pbpi::build(&mut rt, cfg, PbpiVariant::Hybrid);
            let h = rt.run().expect("run failed");
            let l2 = h.version_histogram(app.loop2, 2);
            println!(
                "{:<10} {:>10.2} {:>10.2} {:>10.2}   {:>10}/{}",
                format!("{gpus}G/{smp}S"),
                s.makespan.as_secs_f64(),
                g.makespan.as_secs_f64(),
                h.makespan.as_secs_f64(),
                l2[0],
                l2[1]
            );
        }
    }
    println!(
        "\npbpi-gpu is transfer-bound (loop 3 drags everything back to the host \
         each generation); pbpi-smp never transfers; the hybrid splits loop 2 \
         between devices and beats both — paper Figs. 12–15."
    );
}
