//! Tiled Cholesky factorization (paper §V-B2): the `potrf` bottleneck
//! task under its three application variants, swept over the resource
//! mix. Reproduces the shape of paper Fig. 9 on the simulated node.
//!
//! ```text
//! cargo run --release --example cholesky_sweep
//! ```

use versa::apps::cholesky::{self, CholeskyConfig, CholeskyVariant};
use versa::prelude::*;

fn main() {
    let cfg = CholeskyConfig::paper();
    println!(
        "cholesky: {}x{} f32, {}x{} tiles ({} potrf instances)\n",
        cfg.n,
        cfg.n,
        cfg.bs,
        cfg.bs,
        cfg.nb()
    );
    println!(
        "{:<10} {:>14} {:>14} {:>14} {:>16}",
        "config", "potrf-smp", "potrf-gpu", "potrf-hyb-ver", "potrf GPU/SMP"
    );

    for gpus in [1usize, 2] {
        for smp in [1usize, 4, 8] {
            let platform = || PlatformConfig::minotauro(smp, gpus);
            let f = cfg.flops();
            let smp_v = cholesky::run_sim(
                cfg,
                CholeskyVariant::PotrfSmp,
                SchedulerKind::Affinity,
                platform(),
            );
            let gpu_v = cholesky::run_sim(
                cfg,
                CholeskyVariant::PotrfGpu,
                SchedulerKind::Affinity,
                platform(),
            );
            let mut rt = Runtime::simulated(
                RuntimeConfig::with_scheduler(SchedulerKind::versioning()),
                platform(),
            );
            let app = cholesky::build(&mut rt, cfg, CholeskyVariant::PotrfHybrid);
            let hyb = rt.run().expect("run failed");
            let hist = hyb.version_histogram(app.potrf, 2);
            println!(
                "{:<10} {:>12.0}GF {:>12.0}GF {:>12.0}GF {:>13}/{}",
                format!("{gpus}G/{smp}S"),
                smp_v.gflops(f),
                gpu_v.gflops(f),
                hyb.gflops(f),
                hist[0],
                hist[1]
            );
        }
    }
    println!(
        "\npotrf sits on the critical path; the versioning scheduler keeps it on \
         the GPUs (the earliest executors) apart from the forced λ learning runs \
         of the SMP version — paper Fig. 11."
    );
}
