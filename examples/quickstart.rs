//! Five-minute tour of the versa runtime.
//!
//! Declares a task with two implementations (a fast "GPU" version and a
//! slow SMP version — paper Fig. 4's `implements` pattern), submits a
//! hundred instances, and lets the versioning scheduler learn which to
//! run where.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::time::Duration;
use versa::prelude::*;

fn main() {
    // A simulated node: 4 SMP cores + 1 GPU (see PlatformConfig for the
    // MinoTauro-calibrated defaults).
    let mut rt = Runtime::simulated(
        RuntimeConfig::with_scheduler(SchedulerKind::versioning()),
        PlatformConfig::minotauro(4, 1),
    );

    // #pragma omp target device(cuda) / implements(stencil) — Fig. 4.
    let stencil = rt
        .template("stencil")
        .main("stencil_cuda", &[DeviceKind::Cuda])
        .version("stencil_smp", &[DeviceKind::Smp])
        .register();

    // Simulated execution-time models (the scheduler never sees these —
    // it learns from observed completions).
    rt.bind_cost(stencil, VersionId(0), |_| Duration::from_millis(3));
    rt.bind_cost(stencil, VersionId(1), |_| Duration::from_millis(12));

    // One hundred independent grid tiles, updated in place.
    let tiles: Vec<DataId> = (0..100).map(|_| rt.alloc_bytes(1 << 20)).collect();
    for &tile in &tiles {
        rt.task(stencil).read_write(tile).submit();
    }

    // The implicit taskwait: run everything, flush results home.
    let report = rt.run().expect("run failed");

    println!("{}", report.summary(rt.templates()));
    println!(
        "makespan {:.1} ms across {} workers",
        report.makespan.as_secs_f64() * 1e3,
        report.worker_task_counts.len()
    );
    println!("\nlearned profile (paper Table I):");
    println!("{}", report.profile_table.expect("versioning scheduler was active"));
}
