//! The paper's motivating application (§II, §V-B1): tiled matrix
//! multiplication with three task versions — CUBLAS (main), hand-coded
//! CUDA, and CBLAS on the SMP. Compares mm-gpu against mm-hyb under the
//! versioning scheduler on the simulated 2-GPU node.
//!
//! ```text
//! cargo run --release --example matmul_hybrid
//! ```

use versa::apps::matmul::{self, MatmulConfig, MatmulVariant};
use versa::prelude::*;

fn main() {
    let cfg = MatmulConfig::paper();
    println!(
        "matmul: {}x{} f64, {}x{} tiles -> {} gemm tasks\n",
        cfg.n,
        cfg.n,
        cfg.bs,
        cfg.bs,
        cfg.task_count()
    );
    println!("{:<22} {:>10} {:>12} {:>12}", "configuration", "GFLOP/s", "input MB", "SMP tasks");

    for gpus in [1usize, 2] {
        for smp in [1usize, 8] {
            let platform = PlatformConfig::minotauro(smp, gpus);
            let gpu_only = matmul::run_sim(
                cfg,
                MatmulVariant::Gpu,
                SchedulerKind::Affinity,
                platform.clone(),
            );
            println!(
                "{:<22} {:>10.0} {:>12.0} {:>12}",
                format!("mm-gpu  {gpus}G/{smp}S aff"),
                gpu_only.gflops(cfg.flops()),
                gpu_only.transfers.input_bytes as f64 / 1e6,
                "-"
            );

            let mut rt = Runtime::simulated(
                RuntimeConfig::with_scheduler(SchedulerKind::versioning()),
                platform,
            );
            let app = matmul::build(&mut rt, cfg, MatmulVariant::Hybrid);
            let hybrid = rt.run().expect("run failed");
            let hist = hybrid.version_histogram(app.template, 3);
            println!(
                "{:<22} {:>10.0} {:>12.0} {:>12}",
                format!("mm-hyb  {gpus}G/{smp}S ver"),
                hybrid.gflops(cfg.flops()),
                hybrid.transfers.input_bytes as f64 / 1e6,
                hist[2]
            );
        }
    }
    println!(
        "\nAdding the pure-SMP CBLAS version to the source (one extra annotated \
         function) lets idle cores absorb ~10% of the tiles — without touching \
         the original GPU code path."
    );
}
