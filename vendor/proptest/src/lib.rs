//! In-tree shim of the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! The workspace builds in environments with no network access, so the
//! handful of proptest features the test suites rely on are implemented
//! here from scratch: composable [`Strategy`] values over numeric ranges,
//! tuples, collections and unions, plus the `proptest!`, `prop_oneof!`
//! and `prop_assert*!` macros. Generation is driven by a deterministic
//! splitmix64 stream seeded from the test name and case index, so every
//! failure is reproducible by rerunning the same test.
//!
//! Deliberate simplifications versus upstream: no shrinking (the seed is
//! deterministic, so failing inputs can be re-generated and printed), no
//! persistence files, and no runtime configuration beyond
//! [`ProptestConfig::cases`].

use std::ops::Range;

/// Deterministic generator state (splitmix64).
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeded generator.
    pub fn new(seed: u64) -> TestRng {
        TestRng(seed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// Build the generator for one test case: seed mixes the test name (FNV-1a)
/// with the case index.
pub fn test_rng(name: &str, case: u32) -> TestRng {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    TestRng::new(h ^ ((case as u64) << 32 | case as u64))
}

/// Per-`proptest!` block configuration. Only `cases` is honored.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A value generator. The shim keeps proptest's composition surface
/// (`prop_map`, tuples, `collection::vec`, `prop_oneof!`) but generates
/// directly instead of building shrinkable value trees.
pub trait Strategy {
    /// Type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                (self.start as u64).wrapping_add(rng.below(span)) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
            }
        }
    )*};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.next_unit() as $t) * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($($s:ident/$v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A/a);
tuple_strategy!(A/a, B/b);
tuple_strategy!(A/a, B/b, C/c);
tuple_strategy!(A/a, B/b, C/c, D/d);
tuple_strategy!(A/a, B/b, C/c, D/d, E/e);
tuple_strategy!(A/a, B/b, C/c, D/d, E/e, F/f);

/// Weighted-equal choice between boxed strategies ([`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Union over `options`; must be non-empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let pick = rng.below(self.options.len() as u64) as usize;
        self.options[pick].generate(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Range, Strategy, TestRng};

    /// Strategy producing `Vec`s with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` of values from `element`, length uniform in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec-size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a test module normally imports.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Assert inside a property; accepts an optional format message.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Choose uniformly between the listed strategies (all same value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {{
        let opts: Vec<Box<dyn $crate::Strategy<Value = _>>> =
            vec![$(Box::new($s)),+];
        $crate::Union::new(opts)
    }};
}

/// Define property tests: each `#[test] fn name(arg in strategy, ...)`
/// item runs `cases` times with freshly generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($items:tt)*) => {
        $crate::__proptest_items!(($cfg) $($items)*);
    };
    ($($items:tt)*) => {
        $crate::__proptest_items!(($crate::ProptestConfig::default()) $($items)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $(#[test] fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::test_rng(stringify!($name), case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_seed_sensitive() {
        let mut a = test_rng("t", 0);
        let mut b = test_rng("t", 0);
        let mut c = test_rng("t", 1);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..1000 {
            let v = (3u64..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let f = (0.5f64..2.0).generate(&mut rng);
            assert!((0.5..2.0).contains(&f));
            let i = (-5i64..5).generate(&mut rng);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn vec_and_tuple_and_map_compose() {
        let strat = (0usize..4, collection::vec(0u8..10, 1..5)).prop_map(|(a, v)| (a, v.len()));
        let mut rng = TestRng::new(42);
        for _ in 0..100 {
            let (a, len) = strat.generate(&mut rng);
            assert!(a < 4 && (1..5).contains(&len));
        }
    }

    #[test]
    fn oneof_hits_every_option() {
        let strat = prop_oneof![Just(1u8), Just(2u8), (5u8..7).prop_map(|v| v)];
        let mut rng = TestRng::new(9);
        let mut seen = [false; 3];
        for _ in 0..200 {
            match strat.generate(&mut rng) {
                1 => seen[0] = true,
                2 => seen[1] = true,
                5 | 6 => seen[2] = true,
                other => panic!("unexpected value {other}"),
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16 })]

        #[test]
        fn the_macro_itself_works(x in 0u32..100, v in collection::vec(0u64..9, 0..6)) {
            prop_assert!(x < 100);
            prop_assert_eq!(v.iter().filter(|&&e| e >= 9).count(), 0);
        }
    }
}
