//! In-tree shim of the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The workspace builds without network access, so the `cargo bench`
//! entry points link against this minimal harness instead: it runs each
//! benchmark closure `sample_size` times after one warm-up call and
//! prints mean and best wall time per benchmark. No statistical
//! analysis, HTML reports, or command-line filtering — the figures
//! pipeline uses the dedicated `figures`/`perf_baseline` binaries for
//! real measurements; these benches exist for quick relative numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Harness entry point; owns default settings for new groups.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: 20 }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.default_sample_size,
            _crit: std::marker::PhantomData,
        }
    }
}

/// A named set of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _crit: std::marker::PhantomData<&'c mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        let mut bencher = Bencher { samples: self.sample_size, stats: None };
        f(&mut bencher);
        report(&self.name, &id.to_string(), bencher.stats);
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let mut bencher = Bencher { samples: self.sample_size, stats: None };
        f(&mut bencher, input);
        report(&self.name, &id.to_string(), bencher.stats);
    }

    /// End the group (marker only; results print as they run).
    pub fn finish(self) {}
}

/// A `name/parameter` benchmark label.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Label from a function name and a parameter value.
    pub fn new(name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { label: format!("{name}/{parameter}") }
    }

    /// Label from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    stats: Option<(Duration, Duration)>, // (mean, min)
}

impl Bencher {
    /// Time `f`: one warm-up call, then `sample_size` timed samples.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        black_box(f());
        let mut total = Duration::ZERO;
        let mut best = Duration::MAX;
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            let dt = t0.elapsed();
            total += dt;
            best = best.min(dt);
        }
        self.stats = Some((total / self.samples as u32, best));
    }
}

fn report(group: &str, id: &str, stats: Option<(Duration, Duration)>) {
    match stats {
        Some((mean, min)) => {
            println!("{group}/{id}: mean {mean:.3?}, best {min:.3?}");
        }
        None => println!("{group}/{id}: no measurement (closure never called iter)"),
    }
}

/// Collect benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("count_calls", |b| {
            b.iter(|| runs += 1);
        });
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7u64, |b, &x| {
            b.iter(|| black_box(x * 2));
        });
        group.finish();
        // warm-up + 3 samples
        assert_eq!(runs, 4);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("gemm", 64).to_string(), "gemm/64");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
